// Package arenapair checks the bitset.Arena Get/Put discipline.
//
// Invariant (PR 3, zero-alloc relevant-set kernel): interior bitsets come
// from a bitset.Arena and must return to it — the kernel's steady state
// performs no allocation only because every Get is balanced by a Put once
// the set's consumers are done (see internal/simulation/relevant.go, whose
// release bookkeeping returns each component's set exactly when its last
// predecessor has unioned it). A function that Gets from an arena and never
// Puts leaks pooled sets one query at a time.
//
// The check is a path-sensitive may-analysis over the cfg package's
// control-flow graph. The abstract state is the set of outstanding Get
// sites, each with the local variables currently bound to its set; the join
// at a merge point is union (a leak on any path is a leak). A site dies
// when its set is handed back (Arena.Put, a deferred Put at exit, a Put
// inside a nested closure) or when ownership is transferred by storing the
// set into a structure that outlives the call (a slice element, map entry,
// or field — the release bookkeeping reaches it there). A site that is
// outstanding on every path to exit gets the classic "no matching Put"
// finding; one that leaks only on some paths names the branch shape; and a
// Get that re-executes (via a loop back edge) while its previous set is
// still outstanding is a loop-carried leak, invisible to any single-pass
// syntactic count.
//
// Helpers that move sets across function boundaries carry the ArenaEffects
// object fact: a function returning a set freshly obtained from an arena
// parameter acquires on behalf of its caller (the call site becomes a Get
// site, with the caller's argument as the arena), and one that Puts a set
// parameter releases on the caller's behalf (the call site kills the
// argument's sites). Functions that intentionally hand sets over without
// either shape — e.g. an arena that dies wholesale with its owning engine —
// carry a reviewed //lint:allow arenapair justification instead.
package arenapair

import (
	"go/ast"
	"go/token"
	"go/types"
	"maps"
	"sort"

	"divtopk/tools/vet/analysis"
	"divtopk/tools/vet/analysis/cfg"
	"divtopk/tools/vet/analysis/facts"
	"divtopk/tools/vet/internal/typeutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "arenapair",
	Doc: "flag bitset.Arena.Get without a matching Put on some path in the " +
		"same function (pooled sets must return to the arena)",
	Run:       run,
	FactTypes: []facts.Fact{new(ArenaEffects)},
}

// ArenaEffects is the object fact for functions that acquire or release
// pooled sets on behalf of their callers. Param indices count the flattened
// parameter list; -1 means "does not".
type ArenaEffects struct {
	// AcquiresFrom is the index of the arena parameter whose freshly
	// obtained set the function returns: the call site owes a Put.
	AcquiresFrom int `json:"acquires_from"`
	// ReleasesSet is the index of the set parameter the function returns to
	// an arena: the call site's obligation ends there.
	ReleasesSet int `json:"releases_set"`
}

// AFact marks ArenaEffects as a serializable analyzer fact.
func (*ArenaEffects) AFact() {}

// site is one outstanding acquisition: a Get call (or acquiring helper
// call) position, the arena expression it drew from, and the display label.
type site struct {
	pos   token.Pos
	arena string
	label string
}

// aState maps each outstanding site to the set of local objects currently
// bound to its set (empty when the result was dropped).
type aState = map[site]map[types.Object]bool

func cloneState(st aState) aState {
	out := make(aState, len(st))
	for k, v := range st {
		out[k] = maps.Clone(v)
	}
	return out
}

func unionState(a, b aState) aState {
	out := cloneState(a)
	for k, v := range b {
		if ex, ok := out[k]; ok {
			for o := range v {
				ex[o] = true
			}
		} else {
			out[k] = maps.Clone(v)
		}
	}
	return out
}

func intersectState(a, b aState) aState {
	out := aState{}
	for k, v := range a {
		if bv, ok := b[k]; ok {
			m := maps.Clone(v)
			for o := range bv {
				m[o] = true
			}
			out[k] = m
		}
	}
	return out
}

func equalState(a, b aState) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		bv, ok := b[k]
		if !ok || !maps.Equal(v, bv) {
			return false
		}
	}
	return true
}

// killObj removes every site whose set is bound to obj (a Put or an
// ownership transfer of that variable).
func killObj(st aState, obj types.Object) {
	if obj == nil {
		return
	}
	for k, v := range st {
		if v[obj] {
			delete(st, k)
		}
	}
}

func run(pass *analysis.Pass) (any, error) {
	c := &checker{pass: pass}
	var decls []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				decls = append(decls, fd)
			}
		}
	}
	// Phase 1: ArenaEffects facts, iterated so acquire chains (a helper
	// returning another helper's set) converge regardless of order.
	for round := 0; round <= len(decls); round++ {
		changed := false
		for _, fd := range decls {
			if c.exportEffects(fd) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Phase 2: report. Func literals are separate scopes with their own
	// graphs (their Puts still credit the enclosing function's sites at
	// exit — the release-loop-in-closure pattern).
	for _, fd := range decls {
		c.check(fd, fd.Body)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				c.check(fd, lit.Body)
			}
			return true
		})
	}
	return nil, nil
}

type checker struct {
	pass *analysis.Pass
}

// hooks observe one replay of a block's nodes; any callback may be nil.
type hooks struct {
	// loop fires when a Get site executes while already outstanding — only
	// possible through a loop back edge.
	loop func(s site)
	// ret fires on a return statement with the state before it (for escape
	// detection during fact computation).
	ret func(r *ast.ReturnStmt, st aState)
	// put fires on every direct Arena.Put with an identifier argument.
	put func(recv ast.Expr, arg types.Object)
}

// arenaCall matches call as a bitset.Arena method invocation.
func (c *checker) arenaCall(call *ast.CallExpr, method string) (ast.Expr, bool) {
	return typeutil.MethodCall(c.pass.TypesInfo, call, "bitset", "Arena", method)
}

// callEffects resolves call to a function carrying an ArenaEffects fact.
func (c *checker) callEffects(call *ast.CallExpr) (*ArenaEffects, bool) {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = c.pass.TypesInfo.ObjectOf(fun)
	case *ast.SelectorExpr:
		obj = c.pass.TypesInfo.ObjectOf(fun.Sel)
	default:
		return nil, false
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil, false
	}
	var eff ArenaEffects
	if !c.pass.ImportObjectFact(fn, &eff) {
		return nil, false
	}
	return &eff, true
}

// genSite matches e as an acquisition — a direct Arena.Get() or a call to
// an acquiring helper — returning the new site.
func (c *checker) genSite(e ast.Expr) (site, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return site{}, false
	}
	if recv, ok := c.arenaCall(call, "Get"); ok && len(call.Args) == 0 {
		arena := types.ExprString(recv)
		return site{pos: call.Pos(), arena: arena, label: arena + ".Get()"}, true
	}
	if eff, ok := c.callEffects(call); ok && eff.AcquiresFrom >= 0 && eff.AcquiresFrom < len(call.Args) {
		return site{
			pos:   call.Pos(),
			arena: types.ExprString(call.Args[eff.AcquiresFrom]),
			label: types.ExprString(call),
		}, true
	}
	return site{}, false
}

// addSite records a new outstanding site bound to obj (nil for unbound),
// firing the loop hook when the site is already live from a prior
// iteration.
func addSite(st aState, s site, obj types.Object, h hooks) {
	if _, live := st[s]; live && h.loop != nil {
		h.loop(s)
	}
	binds := map[types.Object]bool{}
	if obj != nil {
		binds[obj] = true
	}
	st[s] = binds
}

// isSimpleIdent returns the object of e when it is a plain (non-blank)
// identifier.
func (c *checker) isSimpleIdent(e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return c.pass.TypesInfo.ObjectOf(id)
}

// assign applies one lhs = rhs pair.
func (c *checker) assign(lhs, rhs ast.Expr, st aState, h hooks) {
	lhsObj := c.isSimpleIdent(lhs)
	simpleLHS := lhsObj != nil || isBlank(lhs)
	if s, ok := c.genSite(rhs); ok {
		if simpleLHS {
			addSite(st, s, lhsObj, h) // may be unbound (blank): a leak
		}
		// Non-simple LHS (slice element, map entry, field): the set is
		// stored into a structure that outlives this call — ownership
		// transfers with it, no site.
		c.scan(lhs, st, h)
		return
	}
	if rhsObj := c.isSimpleIdent(rhs); rhsObj != nil {
		if lhsObj != nil {
			// Alias: the new name reaches the same set.
			for _, binds := range st {
				if binds[rhsObj] {
					binds[lhsObj] = true
				}
			}
		} else if !isBlank(lhs) {
			// Ownership transfer into a longer-lived structure.
			killObj(st, rhsObj)
			c.scan(lhs, st, h)
		}
		return
	}
	c.scan(rhs, st, h)
	c.scan(lhs, st, h)
}

func isBlank(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}

// scan walks an expression (or statement fragment) that is not an
// assignment context: naked acquisitions stay unbound, Puts and releasing
// helper calls kill.
func (c *checker) scan(n ast.Node, st aState, h hooks) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch v := x.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			if c.applyCall(v, st, h) {
				return false
			}
		}
		return true
	})
}

// applyCall applies the state effect of one call, reporting whether its
// children are already handled.
func (c *checker) applyCall(call *ast.CallExpr, st aState, h hooks) bool {
	if recv, ok := c.arenaCall(call, "Put"); ok && len(call.Args) == 1 {
		arg := c.isSimpleIdent(call.Args[0])
		if h.put != nil && arg != nil {
			h.put(recv, arg)
		}
		killObj(st, arg)
		return true
	}
	if s, ok := c.genSite(call); ok {
		addSite(st, s, nil, h)
		return true
	}
	if eff, ok := c.callEffects(call); ok && eff.ReleasesSet >= 0 && eff.ReleasesSet < len(call.Args) {
		killObj(st, c.isSimpleIdent(call.Args[eff.ReleasesSet]))
		return true
	}
	return false
}

// step applies one block node to st in place.
func (c *checker) step(n ast.Node, st aState, h hooks) {
	switch v := n.(type) {
	case *ast.AssignStmt:
		if len(v.Lhs) == len(v.Rhs) {
			for i := range v.Rhs {
				c.assign(v.Lhs[i], v.Rhs[i], st, h)
			}
			return
		}
	case *ast.DeclStmt:
		if gd, ok := v.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Names) == len(vs.Values) {
					for i := range vs.Values {
						c.assign(vs.Names[i], vs.Values[i], st, h)
					}
				}
			}
			return
		}
	case *ast.ReturnStmt:
		if h.ret != nil {
			h.ret(v, st)
		}
	}
	c.scan(n, st, h)
}

func (c *checker) flow() cfg.Flow {
	return cfg.Flow{
		Entry: aState{},
		Transfer: func(b *cfg.Block, in cfg.State) cfg.State {
			st := cloneState(in.(aState))
			for _, n := range b.Nodes {
				c.step(n, st, hooks{})
			}
			return st
		},
		Join:  func(a, b cfg.State) cfg.State { return unionState(a.(aState), b.(aState)) },
		Equal: func(a, b cfg.State) bool { return equalState(a.(aState), b.(aState)) },
	}
}

// sweep replays every reachable block over its fixpoint in-state.
func (c *checker) sweep(g *cfg.Graph, in map[*cfg.Block]cfg.State, h hooks) {
	for _, b := range g.Blocks {
		stIn, ok := in[b]
		if !ok {
			continue
		}
		st := cloneState(stIn.(aState))
		for _, n := range b.Nodes {
			c.step(n, st, h)
		}
	}
}

// exitKills collects the objects whose sites are released at function exit
// without appearing in straight-line code: deferred Puts (and releasing
// helper calls), and Puts inside nested closures — the release-bookkeeping-
// in-a-closure pattern.
func (c *checker) exitKills(g *cfg.Graph, body *ast.BlockStmt) []types.Object {
	var objs []types.Object
	collect := func(call *ast.CallExpr) {
		if _, ok := c.arenaCall(call, "Put"); ok && len(call.Args) == 1 {
			if obj := c.isSimpleIdent(call.Args[0]); obj != nil {
				objs = append(objs, obj)
			}
			return
		}
		if eff, ok := c.callEffects(call); ok && eff.ReleasesSet >= 0 && eff.ReleasesSet < len(call.Args) {
			if obj := c.isSimpleIdent(call.Args[eff.ReleasesSet]); obj != nil {
				objs = append(objs, obj)
			}
		}
	}
	for _, d := range g.Defers {
		collect(d.Call)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					collect(call)
				}
				return true
			})
			return false
		}
		return true
	})
	return objs
}

// check reports leaks in body; fd names the enclosing declaration.
func (c *checker) check(fd *ast.FuncDecl, body *ast.BlockStmt) {
	g := cfg.New(body)
	mayIn := g.Fixpoint(c.flow())
	fn := typeutil.FuncFor(fd)

	// Loop-carried leaks: a site re-executing while outstanding.
	loopReported := map[site]bool{}
	c.sweep(g, mayIn, hooks{loop: func(s site) {
		if !loopReported[s] {
			loopReported[s] = true
			c.pass.Reportf(s.pos,
				"%s in %s re-runs while the set from the previous iteration is still "+
					"outstanding: release it before the next iteration (loop-carried leak "+
					"drains the arena)",
				s.label, fn)
		}
	}})

	mayExit := aState{}
	if st, ok := mayIn[g.Exit]; ok {
		mayExit = cloneState(st.(aState))
	}
	if len(mayExit) == 0 {
		return
	}

	// A second fixpoint with intersection join separates "leaks on every
	// path" from "leaks on some path".
	mustFlow := c.flow()
	mustFlow.Join = func(a, b cfg.State) cfg.State { return intersectState(a.(aState), b.(aState)) }
	mustIn := g.Fixpoint(mustFlow)
	mustExit := aState{}
	if st, ok := mustIn[g.Exit]; ok {
		mustExit = st.(aState)
	}

	for _, obj := range c.exitKills(g, body) {
		killObj(mayExit, obj)
		killObj(mustExit, obj)
	}

	var leaks []site
	for s := range mayExit {
		if !loopReported[s] {
			leaks = append(leaks, s)
		}
	}
	sort.Slice(leaks, func(i, j int) bool { return leaks[i].pos < leaks[j].pos })
	for _, s := range leaks {
		if _, everyPath := mustExit[s]; everyPath {
			c.pass.Reportf(s.pos,
				"%s in %s has no matching %s.Put() on any path: pooled sets must "+
					"return to the arena (a deferred Put counts) or the leak needs a reviewed "+
					"//lint:allow arenapair justification",
				s.label, fn, s.arena)
		} else {
			c.pass.Reportf(s.pos,
				"%s in %s is missing %s.Put() on some path: a branch exits without "+
					"returning the set — release on every path (a deferred Put covers them all)",
				s.label, fn, s.arena)
		}
	}
}

// exportEffects computes fd's ArenaEffects fact, reporting whether it
// changed.
func (c *checker) exportEffects(fd *ast.FuncDecl) bool {
	obj, ok := c.pass.TypesInfo.ObjectOf(fd.Name).(*types.Func)
	if !ok || fd.Type.Params == nil {
		return false
	}
	// Flattened parameter list; arena-typed params by object and name.
	paramIndex := map[types.Object]int{}
	arenaParams := map[types.Object]int{}
	arenaByName := map[string]int{}
	i := 0
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			po := c.pass.TypesInfo.ObjectOf(name)
			paramIndex[po] = i
			if po != nil && typeutil.IsNamed(po.Type(), "bitset", "Arena") {
				arenaParams[po] = i
				arenaByName[name.Name] = i
			}
			i++
		}
	}
	if len(arenaParams) == 0 {
		return false
	}

	g := cfg.New(fd.Body)
	eff := ArenaEffects{AcquiresFrom: -1, ReleasesSet: -1}
	h := hooks{
		ret: func(r *ast.ReturnStmt, st aState) {
			for _, res := range r.Results {
				if s, ok := c.genSite(res); ok {
					if idx, ok := arenaByName[s.arena]; ok && eff.AcquiresFrom < 0 {
						eff.AcquiresFrom = idx
					}
					continue
				}
				if resObj := c.isSimpleIdent(res); resObj != nil {
					for s, binds := range st {
						if binds[resObj] {
							if idx, ok := arenaByName[s.arena]; ok && eff.AcquiresFrom < 0 {
								eff.AcquiresFrom = idx
							}
						}
					}
				}
			}
		},
		put: func(recv ast.Expr, arg types.Object) {
			if _, ok := arenaParams[typeutil.ObjOf(c.pass.TypesInfo, recv)]; ok {
				if idx, ok := paramIndex[arg]; ok && eff.ReleasesSet < 0 {
					eff.ReleasesSet = idx
				}
			}
		},
	}
	c.sweep(g, g.Fixpoint(c.flow()), h)

	if eff.AcquiresFrom < 0 && eff.ReleasesSet < 0 {
		return false
	}
	var old ArenaEffects
	if c.pass.ImportObjectFact(obj, &old) && old == eff {
		return false
	}
	c.pass.ExportObjectFact(obj, &eff)
	return true
}
