// Package arenapair checks the bitset.Arena Get/Put discipline.
//
// Invariant (PR 3, zero-alloc relevant-set kernel): interior bitsets come
// from a bitset.Arena and must return to it — the kernel's steady state
// performs no allocation only because every Get is balanced by a Put once
// the set's consumers are done (see internal/simulation/relevant.go, whose
// release bookkeeping returns each component's set exactly when its last
// predecessor has unioned it). A function that Gets from an arena and never
// Puts leaks pooled sets one query at a time.
//
// The check is per function and path-insensitive: a function that calls
// Arena.Get on some arena value must also call Arena.Put on that value at
// least once (a deferred Put counts; Puts inside the release loops of
// nested closures count). Functions that intentionally hand sets over —
// e.g. an arena that dies wholesale with its owning engine — carry a
// reviewed //lint:allow arenapair justification instead.
package arenapair

import (
	"go/ast"
	"go/token"
	"go/types"

	"divtopk/tools/vet/analysis"
	"divtopk/tools/vet/internal/typeutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "arenapair",
	Doc: "flag bitset.Arena.Get without a matching Put in the same function " +
		"(pooled sets must return to the arena)",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	type usage struct {
		gets []token.Pos
		puts int
	}
	// Keyed by the receiver's source text: "arena" and "e.rarena" are
	// different pools even when rooted at the same object.
	uses := make(map[string]*usage)
	var order []string
	get := func(recv ast.Expr) *usage {
		k := types.ExprString(recv)
		u, ok := uses[k]
		if !ok {
			u = &usage{}
			uses[k] = u
			order = append(order, k)
		}
		return u
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if recv, ok := typeutil.MethodCall(pass.TypesInfo, call, "bitset", "Arena", "Get"); ok && len(call.Args) == 0 {
			u := get(recv)
			u.gets = append(u.gets, call.Pos())
		}
		if recv, ok := typeutil.MethodCall(pass.TypesInfo, call, "bitset", "Arena", "Put"); ok {
			get(recv).puts++
		}
		return true
	})

	for _, k := range order {
		u := uses[k]
		if len(u.gets) == 0 || u.puts > 0 {
			continue
		}
		for _, pos := range u.gets {
			pass.Reportf(pos,
				"%s.Get() in %s has no matching %s.Put() on any path: pooled sets must "+
					"return to the arena (a deferred Put counts) or the leak needs a reviewed "+
					"//lint:allow arenapair justification",
				k, typeutil.FuncFor(fd), k)
		}
	}
}
