// Command divtopk-vet is the multichecker binary for the divtopk analyzer
// suite: it machine-checks the engine's concurrency and versioning
// invariants (see the analyzer packages under tools/vet for the rules and
// the PRs whose bugs motivated them).
//
// Standalone (run from the repository root; -dir resolves the patterns):
//
//	divtopk-vet ./...
//	divtopk-vet -dir /path/to/repo ./internal/...
//
// As a cmd/go vet tool (the binary also speaks the vet config protocol):
//
//	go vet -vettool=$(pwd)/bin/divtopk-vet ./...
//
// Both drivers thread analyzer facts across package boundaries: standalone
// runs analyze packages in dependency order against one shared fact set,
// and vet-tool runs decode the .vetx files of the unit's direct imports and
// encode the full set for their importers — so a fact-driven analyzer sees
// a helper's effects even when the helper lives in an imported package.
//
// Exit status: 0 clean, 1 tool failure, 2 findings.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"sort"
	"strings"

	"divtopk/tools/vet/analysis"
	"divtopk/tools/vet/analysis/facts"
	"divtopk/tools/vet/analysis/load"
	"divtopk/tools/vet/arenapair"
	"divtopk/tools/vet/curload"
	"divtopk/tools/vet/detflow"
	"divtopk/tools/vet/detorder"
	"divtopk/tools/vet/errflow"
	"divtopk/tools/vet/lockhold"
	"divtopk/tools/vet/snapmut"
	"divtopk/tools/vet/swapver"
	"divtopk/tools/vet/verkey"
)

// analyzers is the full suite.
var analyzers = []*analysis.Analyzer{
	snapmut.Analyzer,
	curload.Analyzer,
	verkey.Analyzer,
	arenapair.Analyzer,
	lockhold.Analyzer,
	detorder.Analyzer,
	detflow.Analyzer,
	errflow.Analyzer,
	swapver.Analyzer,
}

func main() {
	// cmd/go version handshake: `divtopk-vet -V=full` must print a
	// "name version ..." line for the build cache key.
	for _, a := range os.Args[1:] {
		if a == "-V=full" || a == "-V" {
			fmt.Printf("divtopk-vet version %s\n", version())
			return
		}
		// cmd/go flag discovery: respond with the (empty) set of tool
		// flags it may forward, as a JSON array.
		if a == "-flags" {
			fmt.Println("[]")
			return
		}
	}
	analysis.RegisterFactTypes(analyzers)

	fs := flag.NewFlagSet("divtopk-vet", flag.ExitOnError)
	dir := fs.String("dir", ".", "directory to resolve package patterns in")
	list := fs.Bool("list", false, "list the analyzers and exit")
	sum := fs.Bool("summary", false, "print per-analyzer finding/suppression counts after the run")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: divtopk-vet [-dir d] [-summary] packages...\n       divtopk-vet unit.cfg  (cmd/go vet tool protocol)\n\nanalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(1)
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	args := fs.Args()

	// A single .cfg argument is cmd/go invoking us as -vettool.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		unitCheck(args[0])
		return
	}
	if len(args) == 0 {
		fs.Usage()
		os.Exit(1)
	}

	pkgs, err := load.Packages(*dir, args)
	if err != nil {
		fmt.Fprintf(os.Stderr, "divtopk-vet: %v\n", err)
		os.Exit(1)
	}
	// One fact set for the whole run: load.Packages returns targets in
	// dependency order (go list -deps emits dependencies first), so facts
	// a package exports are in the set before its importers are analyzed.
	factSet := facts.NewSet()
	stats := newSummary()
	exit := 0
	for _, p := range pkgs {
		diags := runSuite(&analysis.Pass{
			Fset:      p.Fset,
			Files:     p.Files,
			Pkg:       p.Types,
			PkgPath:   p.ImportPath,
			TypesInfo: p.Info,
			FactSet:   factSet,
		}, stats)
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", p.Fset.Position(d.pos), d.name, d.msg)
			exit = 2
		}
	}
	if *sum {
		stats.print(os.Stderr)
	}
	os.Exit(exit)
}

// diagRecord is one finding tagged with its analyzer.
type diagRecord struct {
	pos  token.Pos
	name string
	msg  string
}

// summary aggregates per-analyzer outcome counts across packages: findings
// that survived suppression, findings a //lint:allow absorbed, and stale
// suppressions naming the analyzer.
type summary map[string]*outcome

type outcome struct {
	findings, suppressed, stale int
}

func newSummary() summary { return summary{} }

func (s summary) row(name string) *outcome {
	if s == nil {
		return &outcome{}
	}
	o := s[name]
	if o == nil {
		o = &outcome{}
		s[name] = o
	}
	return o
}

func (s summary) print(w *os.File) {
	names := make([]string, 0, len(s))
	for n := range s {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "divtopk-vet summary: %-12s %8s %10s %6s\n", "analyzer", "findings", "suppressed", "stale")
	for _, n := range names {
		o := s[n]
		fmt.Fprintf(w, "                     %-12s %8d %10d %6d\n", n, o.findings, o.suppressed, o.stale)
	}
}

// runSuite applies every analyzer to one package pass skeleton, honoring
// //lint:allow suppressions and surfacing malformed ones, and returns the
// findings in stable position order, including lintstale findings for
// suppressions no analyzer used. Test files are exempt: the invariants
// guard production code, and tests deliberately drive the raw primitives
// (unversioned cache keys, never-returned arena sets) to exercise them.
func runSuite(base *analysis.Pass, stats summary) []diagRecord {
	var files []*ast.File
	for _, f := range base.Files {
		if strings.HasSuffix(base.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		files = append(files, f)
	}
	base.Files = files

	var out []diagRecord
	sups, bad := analysis.Suppressions(base.Fset, base.Files)
	for _, b := range bad {
		out = append(out, diagRecord{pos: b.Pos, name: "lintallow", msg: b.Message})
		stats.row("lintallow").findings++
	}
	for _, a := range analyzers {
		var diags []analysis.Diagnostic
		pass := *base
		pass.Analyzer = a
		pass.Report = func(d analysis.Diagnostic) { diags = append(diags, d) }
		if _, err := a.Run(&pass); err != nil {
			out = append(out, diagRecord{name: a.Name, msg: fmt.Sprintf("analyzer failed: %v", err)})
			continue
		}
		kept := analysis.FilterSuppressed(base.Fset, sups, a.Name, diags)
		row := stats.row(a.Name)
		row.findings += len(kept)
		row.suppressed += len(diags) - len(kept)
		for _, d := range kept {
			out = append(out, diagRecord{pos: d.Pos, name: a.Name, msg: d.Message})
		}
	}
	// The lintstale pseudo-analyzer: a suppression no analyzer used this
	// run excuses nothing and must be deleted with the code change that
	// obsoleted it.
	for _, d := range analysis.Stale(sups) {
		out = append(out, diagRecord{pos: d.Pos, name: "lintstale", msg: d.Message})
	}
	for _, s := range sups {
		if !s.Used {
			stats.row(s.Analyzer).stale++
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	return out
}
