package main_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// writeTree materializes a file tree under dir.
func writeTree(t *testing.T, dir string, files map[string]string) {
	t.Helper()
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
}

// buildTool compiles the divtopk-vet binary into a temp dir.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "divtopk-vet")
	if runtime.GOOS == "windows" {
		bin += ".exe"
	}
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building divtopk-vet: %v\n%s", err, out)
	}
	return bin
}

// fixture is a two-package module: b exports a nondeterministic helper, a
// calls it. The finding in a exists only if detflow's Determinism fact for
// b.Stamp crosses the package boundary — the call is not a direct
// nondeterminism source in a.
var fixture = map[string]string{
	"go.mod": "module example.com/rt\n\ngo 1.24\n",
	"b/b.go": `package b

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`,
	"a/a.go": `package a

import "example.com/rt/b"

func UseStamp() int64 { return b.Stamp() }
`,
}

// TestFactsRoundTripStandalone proves the cross-package fact edge through
// the standalone driver's shared fact set.
func TestFactsRoundTripStandalone(t *testing.T) {
	bin := buildTool(t)
	mod := t.TempDir()
	writeTree(t, mod, fixture)

	cmd := exec.Command(bin, "-dir", mod, "./...")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("expected findings (exit 2), got success\n%s", out)
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Fatalf("expected exit 2, got %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "call to b.Stamp in UseStamp: b.Stamp is nondeterministic") {
		t.Fatalf("missing cross-package detflow finding in output:\n%s", out)
	}
}

// TestFactsRoundTripVettool proves the same edge through the cmd/go
// -vettool protocol: b's unit encodes its facts to a .vetx file and a's
// unit decodes it via PackageVetx.
func TestFactsRoundTripVettool(t *testing.T) {
	bin := buildTool(t)
	mod := t.TempDir()
	writeTree(t, mod, fixture)

	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = mod
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("expected findings (vet failure), got success\n%s", out)
	}
	if !strings.Contains(string(out), "call to b.Stamp in UseStamp: b.Stamp is nondeterministic") {
		t.Fatalf("missing cross-package detflow finding in go vet output:\n%s", out)
	}
}
