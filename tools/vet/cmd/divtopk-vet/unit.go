package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"runtime/debug"

	"divtopk/tools/vet/analysis"
	"divtopk/tools/vet/analysis/facts"
)

// vetConfig mirrors the JSON configuration cmd/go writes for -vettool
// invocations (the unitchecker protocol): one file per compilation unit,
// with import resolution and export data precomputed by the go command.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitCheck analyzes one compilation unit described by a cfg file and
// reports findings the way cmd/go expects: the unit's fact set — its direct
// imports' decoded .vetx files plus everything the suite exported for this
// unit — is written to VetxOutput (whole-set encoding makes fact flow
// transitive with only direct-import loading), diagnostics go to stderr,
// exit 2 when any finding survives suppression. VetxOnly units run the full
// suite too — that is what produces their facts — but their diagnostics are
// discarded: cmd/go asks for facts only because no named package depends on
// seeing the unit's findings.
func unitCheck(cfgFile string) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fatalf("reading config: %v", err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatalf("parsing config %s: %v", cfgFile, err)
	}
	factSet := facts.NewSet()
	for path, vetx := range cfg.PackageVetx {
		data, err := os.ReadFile(vetx)
		if err != nil {
			continue // missing dependency facts degrade precision, not soundness
		}
		if err := factSet.Decode(data); err != nil {
			fatalf("decoding facts of %s: %v", path, err)
		}
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx(&cfg, factSet)
				return
			}
			fatalf("parsing %s: %v", name, err)
		}
		files = append(files, f)
	}

	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := analysis.NewInfo()
	conf := types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx(&cfg, factSet)
			return
		}
		fatalf("type-checking %s: %v", cfg.ImportPath, err)
	}

	diags := runSuite(&analysis.Pass{
		Fset:      fset,
		Files:     files,
		Pkg:       tpkg,
		PkgPath:   cfg.ImportPath,
		TypesInfo: info,
		FactSet:   factSet,
	}, nil)
	writeVetx(&cfg, factSet)
	if cfg.VetxOnly || len(diags) == 0 {
		return
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.pos), d.name, d.msg)
	}
	os.Exit(2)
}

// writeVetx encodes s to cfg.VetxOutput; the go command requires the file
// to exist after every successful run.
func writeVetx(cfg *vetConfig, s *facts.Set) {
	if cfg.VetxOutput == "" {
		return
	}
	data, err := s.Encode()
	if err != nil {
		fatalf("encoding facts: %v", err)
	}
	if err := os.WriteFile(cfg.VetxOutput, data, 0o666); err != nil {
		fatalf("writing facts output: %v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "divtopk-vet: "+format+"\n", args...)
	os.Exit(1)
}

// version derives the -V=full version string. The binary's content hash is
// unavailable to itself, so use the main module's version/checksum when
// built from a module (go install), falling back to a digest of the build
// settings — changing the tool's source in the working tree still changes
// nothing here, which only makes `go vet` reuse cached results; CI always
// rebuilds from scratch.
func version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	if bi.Main.Sum != "" {
		return bi.Main.Version + "-" + bi.Main.Sum
	}
	h := sha256.New()
	for _, s := range bi.Settings {
		fmt.Fprintf(h, "%s=%s\n", s.Key, s.Value)
	}
	return fmt.Sprintf("devel-%x", h.Sum(nil)[:8])
}
