package errflow_test

import (
	"testing"

	"divtopk/tools/vet/analysis/analysistest"
	"divtopk/tools/vet/errflow"
)

func Test(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), errflow.Analyzer, "a", "dura")
}
