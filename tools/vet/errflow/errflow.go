// Package errflow flags versioned-mutation calls whose error result is not
// checked on every execution path.
//
// Invariant (PR 4/PR 5, versioned mutation): ApplyDelta,
// ApplyDeltaWithSummary, BoundsCache.Advance, and IncCompute mutate or
// advance versioned state and report failure through their final error
// result. A caller that ignores that error — discards it, overwrites it with
// the next mutation's error, or checks it only on some branches — continues
// as if the mutation succeeded, and the snapshot, its derived indexes, and
// the observed version silently disagree from then on. The error must reach
// a check (any use: a condition, an argument, a return) on every path.
//
// The analysis runs over the cfg package's control-flow graph with an
// outstanding-error lattice (error variable -> the call that produced it)
// and a union join: an error is outstanding if it is unchecked on some path
// into a point. Three shapes are reported:
//
//   - discarded: the call's result is assigned to _ or the call runs as a
//     bare statement — no path can ever check it;
//   - overwritten: a new class call assigns over a variable whose previous
//     error is still outstanding (including the same textual call reached
//     again through a loop back edge); and
//   - unchecked on some path: the error is still outstanding when the
//     function exits, reported at the call that produced it.
//
// Invariant (PR 8, durability): wal.Log.Append/Sync, durable.Store's
// Append/Checkpoint/Seed, snapshot.Write, and the DurabilitySink.AppendDelta
// hook persist acknowledged state. A caller that drops one of these errors
// acknowledges an update that never reached disk — the exact lie the
// crash-recovery fuzz exists to rule out — so they are held to the same
// every-path discipline. Unlike the versioned-mutation class, whose method
// names are distinctive, the durability class matches qualified names
// (package + receiver type + method): a bare "Append" or "Sync" would flag
// every stdlib writer.
//
// Invariant (PR 9, group commit): the batch-apply entry points —
// wal.Log.AppendBatch, durable.Store.AppendBatch, the
// DurabilitySink.AppendBatch hook, ApplyDeltaVersionStep, and the matcher's
// UpdateMerged/UpdateBatch wrappers (which join via the ErrVersioning fact) —
// commit many acknowledged versions through one call, so a dropped error here
// lies to every caller of the batch at once. AppendBatch and
// ApplyDeltaVersionStep are distinctive enough to match by bare name, which
// also covers the interface hook.
//
// Returning the class call's result directly (return m.ApplyDelta(d)) is
// propagation, not discarding. Functions whose final result is an error and
// whose body performs a class call export the ErrVersioning object fact, so
// in-package and cross-package wrappers join the class: their callers are
// held to the same discipline.
package errflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"maps"
	"sort"

	"divtopk/tools/vet/analysis"
	"divtopk/tools/vet/analysis/cfg"
	"divtopk/tools/vet/analysis/facts"
	"divtopk/tools/vet/internal/typeutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "errflow",
	Doc: "flag versioned-mutation and durability calls (ApplyDelta, Advance, " +
		"IncCompute, wal.Log.Append, snapshot.Write, and their wrappers) whose " +
		"error result goes unchecked on some path",
	Run:       run,
	FactTypes: []facts.Fact{new(ErrVersioning)},
}

// ErrVersioning is the object fact marking a function as a versioned
// mutator: its final error result carries a class call's failure and must be
// checked like the class calls themselves.
type ErrVersioning struct{}

// AFact marks ErrVersioning as a serializable analyzer fact.
func (*ErrVersioning) AFact() {}

// classNames are the versioned-mutation entry points; a call joins the class
// when its callee has one of these names (or carries the ErrVersioning fact)
// and its final result is an error.
var classNames = map[string]bool{
	"ApplyDelta":            true,
	"ApplyDeltaWithSummary": true,
	"ApplyDeltaVersionStep": true,
	"Advance":               true,
	"IncCompute":            true,
	// The durability hooks the matcher calls before publishing a snapshot;
	// distinctive enough to match by bare name, and as interface methods they
	// have no body to export a fact from. The bare names also cover the
	// concrete wal.Log.AppendBatch and durable.Store.AppendBatch.
	"AppendDelta": true,
	"AppendBatch": true,
}

// classMethods are the durability entry points, matched by package + receiver
// type + method: their bare names (Append, Sync, Write) are shared with half
// the standard library.
var classMethods = []struct{ pkg, typ, method string }{
	{"wal", "Log", "Append"},
	{"wal", "Log", "Sync"},
	{"durable", "Store", "Append"},
	{"durable", "Store", "Checkpoint"},
	{"durable", "Store", "Seed"},
}

// classFuncs are the package-level durability entry points, matched by
// package + function name.
var classFuncs = []struct{ pkg, name string }{
	{"snapshot", "Write"},
}

// genInfo records one outstanding unchecked error: where it was produced and
// the call text for diagnostics.
type genInfo struct {
	pos   token.Pos
	label string
}

// eState maps each error variable to its outstanding producer.
type eState = map[types.Object]genInfo

func joinState(a, b eState) eState {
	out := maps.Clone(a)
	for k, bg := range b {
		if ag, ok := out[k]; !ok || bg.pos < ag.pos {
			out[k] = bg
		}
	}
	return out
}

func run(pass *analysis.Pass) (any, error) {
	c := &checker{pass: pass}
	var decls []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				decls = append(decls, fd)
			}
		}
	}
	// Phase 1: ErrVersioning facts for wrappers, iterated so wrapper chains
	// converge regardless of declaration order.
	for round := 0; round <= len(decls); round++ {
		changed := false
		for _, fd := range decls {
			if c.exportVersioning(fd) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Phase 2: check each function and each func literal over its own graph.
	for _, fd := range decls {
		c.check(fd, fd.Body)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				c.check(fd, lit.Body)
			}
			return true
		})
	}
	return nil, nil
}

type checker struct {
	pass *analysis.Pass
}

// hooks observe one replay of a block's nodes; any callback may be nil.
type hooks struct {
	// discard fires on a class call whose error can never be checked.
	discard func(call *ast.CallExpr, label string)
	// overwrite fires on a class call assigning over an outstanding error.
	overwrite func(call *ast.CallExpr, label string, old genInfo)
}

// classCall matches call as a versioned-mutation invocation — class name or
// ErrVersioning fact carrier — whose final result is an error.
func (c *checker) classCall(call *ast.CallExpr) (string, bool) {
	if !c.lastResultIsError(call) {
		return "", false
	}
	name := typeutil.CalleeName(call)
	if name == "" {
		return "", false
	}
	if classNames[name] {
		return types.ExprString(call), true
	}
	for _, m := range classMethods {
		if _, ok := typeutil.MethodCall(c.pass.TypesInfo, call, m.pkg, m.typ, m.method); ok {
			return types.ExprString(call), true
		}
	}
	var fn *types.Func
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = c.pass.TypesInfo.ObjectOf(fun).(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = c.pass.TypesInfo.ObjectOf(fun.Sel).(*types.Func)
	}
	if fn == nil {
		return "", false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
		for _, f := range classFuncs {
			if fn.Name() == f.name && fn.Pkg() != nil && fn.Pkg().Name() == f.pkg {
				return types.ExprString(call), true
			}
		}
	}
	var fact ErrVersioning
	if c.pass.ImportObjectFact(fn, &fact) {
		return types.ExprString(call), true
	}
	return "", false
}

func (c *checker) lastResultIsError(call *ast.CallExpr) bool {
	tv, ok := c.pass.TypesInfo.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if tup, ok := t.(*types.Tuple); ok {
		if tup.Len() == 0 {
			return false
		}
		t = tup.At(tup.Len() - 1).Type()
	}
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// step applies one block node to st in place, firing h's callbacks. Any
// identifier use of an outstanding error variable — a condition, an
// argument, a return value, a closure capture — counts as the check.
func (c *checker) step(n ast.Node, st eState, h hooks) {
	genLHS := map[*ast.Ident]bool{}
	type gen struct {
		obj types.Object
		gi  genInfo
	}
	var gens []gen
	switch v := n.(type) {
	case *ast.AssignStmt:
		if len(v.Rhs) == 1 {
			if call, ok := ast.Unparen(v.Rhs[0]).(*ast.CallExpr); ok {
				if label, ok := c.classCall(call); ok {
					if id, ok := ast.Unparen(v.Lhs[len(v.Lhs)-1]).(*ast.Ident); ok {
						genLHS[id] = true
						if id.Name == "_" {
							if h.discard != nil {
								h.discard(call, label)
							}
						} else if obj := c.pass.TypesInfo.ObjectOf(id); obj != nil {
							if old, ok := st[obj]; ok && h.overwrite != nil {
								h.overwrite(call, label, old)
							}
							gens = append(gens, gen{obj, genInfo{call.Pos(), label}})
						}
					}
				}
			}
		}
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(v.X).(*ast.CallExpr); ok {
			if label, ok := c.classCall(call); ok && h.discard != nil {
				h.discard(call, label)
			}
		}
	}
	ast.Inspect(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok && !genLHS[id] {
			if obj := c.pass.TypesInfo.ObjectOf(id); obj != nil {
				delete(st, obj)
			}
		}
		return true
	})
	for _, g := range gens {
		st[g.obj] = g.gi
	}
}

func (c *checker) flow() cfg.Flow {
	return cfg.Flow{
		Entry: eState{},
		Transfer: func(b *cfg.Block, in cfg.State) cfg.State {
			st := maps.Clone(in.(eState))
			if st == nil {
				st = eState{}
			}
			for _, n := range b.Nodes {
				c.step(n, st, hooks{})
			}
			return st
		},
		Join:  func(a, b cfg.State) cfg.State { return joinState(a.(eState), b.(eState)) },
		Equal: func(a, b cfg.State) bool { return maps.Equal(a.(eState), b.(eState)) },
	}
}

// check reports unchecked-error shapes in body; fd names the enclosing
// declaration.
func (c *checker) check(fd *ast.FuncDecl, body *ast.BlockStmt) {
	g := cfg.New(body)
	in := g.Fixpoint(c.flow())
	fn := typeutil.FuncFor(fd)
	for _, b := range g.Blocks {
		stIn, ok := in[b]
		if !ok {
			continue
		}
		st := maps.Clone(stIn.(eState))
		c.sweepBlock(b, st, fn)
	}
	// Still outstanding at exit: unchecked on the path that reached it.
	stIn, ok := in[g.Exit]
	if !ok {
		return
	}
	st := maps.Clone(stIn.(eState))
	for _, n := range g.Exit.Nodes {
		c.step(n, st, hooks{})
	}
	var left []genInfo
	for _, gi := range st {
		left = append(left, gi)
	}
	sort.Slice(left, func(i, j int) bool { return left[i].pos < left[j].pos })
	for _, gi := range left {
		c.pass.Reportf(gi.pos,
			"error from %s in %s is not checked on every path: a branch continues as if the "+
				"versioned mutation succeeded, leaving the snapshot and its derived state out of "+
				"sync — check the error before using the updated state",
			gi.label, fn)
	}
}

func (c *checker) sweepBlock(b *cfg.Block, st eState, fn string) {
	for _, n := range b.Nodes {
		c.step(n, st, hooks{
			discard: func(call *ast.CallExpr, label string) {
				c.pass.Reportf(call.Pos(),
					"error from %s in %s is discarded: a failed versioned mutation must not be "+
						"treated as applied — check the error (or propagate it) before trusting the "+
						"new version",
					label, fn)
			},
			overwrite: func(call *ast.CallExpr, label string, old genInfo) {
				c.pass.Reportf(call.Pos(),
					"%s in %s overwrites the unchecked error from line %d: each versioned "+
						"mutation's error must be checked before the next mutation runs",
					label, fn, c.pass.Fset.Position(old.pos).Line)
			},
		})
	}
}

// exportVersioning exports fd's ErrVersioning fact when its final result is
// an error and its body performs a class call, reporting whether the fact is
// new.
func (c *checker) exportVersioning(fd *ast.FuncDecl) bool {
	res := fd.Type.Results
	if res == nil || res.NumFields() == 0 {
		return false
	}
	fields := res.List
	lastType := c.pass.TypesInfo.TypeOf(fields[len(fields)-1].Type)
	if lastType == nil || !types.Identical(lastType, types.Universe.Lookup("error").Type()) {
		return false
	}
	hasClass := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if hasClass {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if _, ok := c.classCall(call); ok {
				hasClass = true
				return false
			}
		}
		return true
	})
	if !hasClass {
		return false
	}
	obj, ok := c.pass.TypesInfo.ObjectOf(fd.Name).(*types.Func)
	if !ok {
		return false
	}
	var old ErrVersioning
	if c.pass.ImportObjectFact(obj, &old) {
		return false
	}
	c.pass.ExportObjectFact(obj, &ErrVersioning{})
	return true
}
