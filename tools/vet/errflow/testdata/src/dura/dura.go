// Package dura exercises the durability class of errflow: qualified matching
// (wal.Log.Append/Sync, durable.Store.Seed/Append/Checkpoint, snapshot.Write,
// the AppendDelta sink hook), and that same-named methods on unrelated types
// stay out of the class.
package dura

import (
	"bytes"

	"durable"
	"snapshot"
	"wal"
)

// Sink is the durability hook: AppendDelta and AppendBatch join the class by
// bare name, the way the library's DurabilitySink interface methods do.
type Sink interface {
	AppendDelta(g *snapshot.Graph, d *wal.Delta) error
	AppendBatch(g *snapshot.Graph, ds []*wal.Delta) error
}

func use(err error) {}

// goodAppendChecked checks the WAL append on the spot.
func goodAppendChecked(l *wal.Log, d *wal.Delta) {
	if err := l.Append(1, d); err != nil {
		panic(err)
	}
}

// goodWritePropagated hands the checkpoint failure to its caller.
func goodWritePropagated(g *snapshot.Graph) (string, error) {
	return snapshot.Write("dir", g)
}

// badAppendDiscarded acknowledges an update that may never have hit disk.
func badAppendDiscarded(l *wal.Log, d *wal.Delta) {
	l.Append(1, d) // want `error from l\.Append\(1, d\) in badAppendDiscarded is discarded`
}

// badSyncBlank drops the fsync verdict: the page-cache state is unknowable.
func badSyncBlank(l *wal.Log) {
	_ = l.Sync() // want `error from l\.Sync\(\) in badSyncBlank is discarded`
}

// badWriteBlank keeps the checkpoint path but blanks the error.
func badWriteBlank(g *snapshot.Graph) string {
	path, _ := snapshot.Write("dir", g) // want `error from snapshot\.Write\("dir", g\) in badWriteBlank is discarded`
	return path
}

// badStoreBranch checks the store append only when verbose: the quiet path
// serves state the WAL never saw.
func badStoreBranch(s *durable.Store, g *snapshot.Graph, d *wal.Delta, verbose bool) {
	err := s.Append(g, d) // want `error from s\.Append\(g, d\) in badStoreBranch is not checked on every path`
	if verbose {
		use(err)
	}
}

// badSeedOverwritten issues the checkpoint while the seed error is still
// unchecked.
func badSeedOverwritten(s *durable.Store, g *snapshot.Graph) {
	err := s.Seed(g)
	err = s.Checkpoint(g) // want `s\.Checkpoint\(g\) in badSeedOverwritten overwrites the unchecked error from line \d+`
	use(err)
}

// badSinkDiscarded drops the durability hook's verdict before publishing.
func badSinkDiscarded(sink Sink, g *snapshot.Graph, d *wal.Delta) {
	sink.AppendDelta(g, d) // want `error from sink\.AppendDelta\(g, d\) in badSinkDiscarded is discarded`
}

// goodUnrelatedWriters: Append/Sync/Write on types outside the durability
// packages are not class calls — a bare-name match would flag every stdlib
// writer.
func goodUnrelatedWriters(buf *bytes.Buffer) {
	buf.Write([]byte("x"))
	var other notALog
	other.Append(1, nil)
	other.Sync()
}

type notALog struct{}

func (notALog) Append(version uint64, d *wal.Delta) error { return nil }
func (notALog) Sync() error                               { return nil }

// suppressed records a reviewed best-effort durability call.
func suppressed(l *wal.Log) {
	//lint:allow errflow best-effort flush; the next Append surfaces the failure
	l.Sync()
}

// goodCoalescer is the group-commit shape done right: the batch append's
// error is checked before any caller of the batch is acknowledged.
func goodCoalescer(s *durable.Store, g *snapshot.Graph, batch []*wal.Delta, ack func(int)) {
	if err := s.AppendBatch(g, batch); err != nil {
		panic(err)
	}
	for i := range batch {
		ack(i)
	}
}

// badCoalescerAcksFirst acknowledges every caller of the batch before
// learning whether the group commit reached disk — one dropped error lies to
// the whole batch at once.
func badCoalescerAcksFirst(s *durable.Store, g *snapshot.Graph, batch []*wal.Delta, ack func(int), verbose bool) {
	err := s.AppendBatch(g, batch) // want `error from s\.AppendBatch\(g, batch\) in badCoalescerAcksFirst is not checked on every path`
	for i := range batch {
		ack(i)
	}
	if verbose {
		use(err)
	}
}

// badBatchSinkDiscarded drops the batch hook's verdict before publishing.
func badBatchSinkDiscarded(sink Sink, g *snapshot.Graph, ds []*wal.Delta) {
	sink.AppendBatch(g, ds) // want `error from sink\.AppendBatch\(g, ds\) in badBatchSinkDiscarded is discarded`
}

// badLogBatchBlank blanks the multi-record WAL write.
func badLogBatchBlank(l *wal.Log, ds []*wal.Delta) {
	_ = l.AppendBatch(1, ds) // want `error from l\.AppendBatch\(1, ds\) in badLogBatchBlank is discarded`
}
