// Package a minimizes the versioned-mutation surface: ApplyDelta,
// ApplyDeltaWithSummary, Advance, and IncCompute all report failure through
// their final error result.
package a

import "errors"

type Delta struct{ bad bool }

type Summary struct{ N int }

type Matcher struct{ v uint64 }

func (m *Matcher) ApplyDelta(d Delta) error {
	if d.bad {
		return errors.New("bad delta")
	}
	m.v++
	return nil
}

func (m *Matcher) ApplyDeltaWithSummary(d Delta) (Summary, error) {
	if d.bad {
		return Summary{}, errors.New("bad delta")
	}
	m.v++
	return Summary{N: 1}, nil
}

type BoundsCache struct{ v uint64 }

func (b *BoundsCache) Advance(d Delta) error {
	if d.bad {
		return errors.New("bad delta")
	}
	b.v++
	return nil
}

func IncCompute(m *Matcher, d Delta) error { return m.ApplyDelta(d) }

func use(err error) {}

// goodChecked checks on the spot.
func goodChecked(m *Matcher, d Delta) {
	if err := m.ApplyDelta(d); err != nil {
		panic(err)
	}
}

// goodPropagated hands the error to its caller — propagation, not discard.
func goodPropagated(m *Matcher, d Delta) error {
	return m.ApplyDelta(d)
}

// goodSummary binds and checks the tuple's error.
func goodSummary(m *Matcher, d Delta) int {
	s, err := m.ApplyDeltaWithSummary(d)
	if err != nil {
		return 0
	}
	return s.N
}

// badDiscardedBlank can never check the error.
func badDiscardedBlank(m *Matcher, d Delta) {
	_ = m.ApplyDelta(d) // want `error from m\.ApplyDelta\(d\) in badDiscardedBlank is discarded`
}

// badDiscardedBare drops the error on the floor as a bare statement.
func badDiscardedBare(m *Matcher, d Delta) {
	m.ApplyDelta(d) // want `error from m\.ApplyDelta\(d\) in badDiscardedBare is discarded`
}

// badSummary keeps the summary but blanks the error.
func badSummary(m *Matcher, d Delta) int {
	s, _ := m.ApplyDeltaWithSummary(d) // want `error from m\.ApplyDeltaWithSummary\(d\) in badSummary is discarded`
	return s.N
}

// badAdvance ignores the bound-index advance failure.
func badAdvance(b *BoundsCache, d Delta) {
	b.Advance(d) // want `error from b\.Advance\(d\) in badAdvance is discarded`
}

// badBranchChecked checks only when verbose: the quiet path continues as if
// the mutation succeeded. The error is used somewhere (it compiles) but not
// on every path.
func badBranchChecked(m *Matcher, d Delta, verbose bool) {
	err := m.ApplyDelta(d) // want `error from m\.ApplyDelta\(d\) in badBranchChecked is not checked on every path`
	if verbose {
		use(err)
	}
}

// badOverwritten issues the second mutation while the first error is still
// unchecked.
func badOverwritten(m *Matcher, d1, d2 Delta) {
	err := m.ApplyDelta(d1)
	err = m.ApplyDelta(d2) // want `m\.ApplyDelta\(d2\) in badOverwritten overwrites the unchecked error from line \d+`
	use(err)
}

// badLoopOverwrite keeps only the last iteration's error: every back edge
// loses one.
func badLoopOverwrite(m *Matcher, ds []Delta) error {
	var err error
	for _, d := range ds {
		err = m.ApplyDelta(d) // want `m\.ApplyDelta\(d\) in badLoopOverwrite overwrites the unchecked error from line \d+`
	}
	return err
}

// goodLoopChecked checks inside every iteration before the back edge.
func goodLoopChecked(m *Matcher, ds []Delta) error {
	for _, d := range ds {
		if err := m.ApplyDelta(d); err != nil {
			return err
		}
	}
	return nil
}

// badWrapper is declared before the wrapper it calls: the ErrVersioning fact
// fixpoint must converge regardless of declaration order.
func badWrapper(m *Matcher, d Delta) {
	apply(m, d) // want `error from apply\(m, d\) in badWrapper is discarded`
}

// apply wraps ApplyDelta and carries the ErrVersioning fact: its callers are
// held to the same discipline as ApplyDelta's.
func apply(m *Matcher, d Delta) error { return m.ApplyDelta(d) }

// goodWrapper checks the wrapped error.
func goodWrapper(m *Matcher, d Delta) {
	if err := apply(m, d); err != nil {
		panic(err)
	}
}

// suppressed records a reviewed best-effort call.
func suppressed(m *Matcher, d Delta) {
	//lint:allow errflow best-effort warmup; a failed delta falls back to full recompute
	m.ApplyDelta(d)
}
