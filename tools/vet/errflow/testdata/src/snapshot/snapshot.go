// Package snapshot minimizes the checkpoint-writing surface of the
// durability class: Write persists a checkpoint and reports failure through
// its final error result.
package snapshot

import "errors"

type Graph struct{ Bad bool }

func Write(dir string, g *Graph) (string, error) {
	if g.Bad {
		return "", errors.New("write failed")
	}
	return dir + "/checkpoint", nil
}
