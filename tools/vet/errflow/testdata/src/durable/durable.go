// Package durable minimizes the durability-store surface: Seed, Append, and
// Checkpoint persist acknowledged state and report failure through their
// error result.
package durable

import (
	"snapshot"
	"wal"
)

type Store struct {
	log *wal.Log
	v   uint64
}

func (s *Store) Seed(g *snapshot.Graph) error {
	if _, err := snapshot.Write("dir", g); err != nil {
		return err
	}
	return nil
}

func (s *Store) Append(g *snapshot.Graph, d *wal.Delta) error {
	if err := s.log.Append(s.v+1, d); err != nil {
		return err
	}
	s.v++
	return nil
}

func (s *Store) Checkpoint(g *snapshot.Graph) error {
	_, err := snapshot.Write("dir", g)
	return err
}

func (s *Store) AppendBatch(g *snapshot.Graph, ds []*wal.Delta) error {
	if err := s.log.AppendBatch(s.v+1, ds); err != nil {
		return err
	}
	s.v += uint64(len(ds))
	return nil
}
