// Package wal minimizes the write-ahead-log surface of the durability class:
// Log.Append and Log.Sync report persistence failure through their error
// result.
package wal

import "errors"

type Delta struct{ Bad bool }

type Log struct{ v uint64 }

func (l *Log) Append(version uint64, d *Delta) error {
	if d.Bad {
		return errors.New("append failed")
	}
	l.v = version
	return nil
}

func (l *Log) Sync() error { return nil }

func (l *Log) AppendBatch(firstVersion uint64, ds []*Delta) error {
	for i, d := range ds {
		if err := l.Append(firstVersion+uint64(i), d); err != nil {
			return err
		}
	}
	return nil
}
