// Package a exercises the heavy-work-under-lock check against the shapes
// in the serving layer: claim state under the lock, release, compute.
package a

import "sync"

type store struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	items map[string]int
	ch    chan int
}

func ComputeCounts(n int) []int { return make([]int, n) }

func Warm() {}

// bad runs the traversal between Lock and Unlock — the exact shape of the
// pre-PR5 BoundsCache.Warm bug.
func (s *store) bad() {
	s.mu.Lock()
	Warm() // want `call to Warm in bad while s\.mu is locked`
	s.mu.Unlock()
}

// badDefer holds the lock to the end of the function via defer.
func (s *store) badDefer() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := ComputeCounts(3) // want `call to ComputeCounts in badDefer while s\.mu is locked`
	return len(c)
}

// badRW: RWMutex.Lock is the write side — same rule.
func (s *store) badRW() {
	s.rw.Lock()
	Warm() // want `call to Warm in badRW while s\.rw is locked`
	s.rw.Unlock()
}

// badSend blocks every other user of the lock behind a receiver.
func (s *store) badSend(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- v // want `channel send in badSend while s\.mu is locked`
}

// goodReleased claims under the lock and computes outside — the fixed
// countsFor shape. Must not be flagged.
func (s *store) goodReleased() []int {
	s.mu.Lock()
	n := len(s.items)
	s.mu.Unlock()
	return ComputeCounts(n)
}

// goodEarlyReturn unlocks in the hit branch and falls through to compute
// after the final unlock.
func (s *store) goodEarlyReturn(k string) int {
	s.mu.Lock()
	if v, ok := s.items[k]; ok {
		s.mu.Unlock()
		return v
	}
	s.mu.Unlock()
	return len(ComputeCounts(1))
}

// goodRead: a read lock never blocks other readers; the invariant targets
// the write side only.
func (s *store) goodRead() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return len(s.items)
}

// goodClosure: the literal runs elsewhere (deferred cleanup); its lock use
// is its own scope.
func (s *store) goodClosure() func() {
	s.mu.Lock()
	s.mu.Unlock()
	return func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		delete(s.items, "k")
	}
}

// suppressed records a reviewed exception (tiny graphs, cold path).
func (s *store) suppressed() {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:allow lockhold cold startup path, runs once before serving begins
	Warm()
}

// --- cases the structured (pre-CFG) walker could not decide ---

// badBranchUnlock releases only on the hit branch; the miss path computes
// with the lock still held.
func (s *store) badBranchUnlock(k string) int {
	s.mu.Lock()
	if v, ok := s.items[k]; ok {
		s.mu.Unlock()
		return v
	}
	n := len(ComputeCounts(2)) // want `call to ComputeCounts in badBranchUnlock while s\.mu is locked`
	s.mu.Unlock()
	return n
}

// badSwitchLock acquires the lock on every arm of the switch, so it is
// must-held afterwards. The structured walker discarded per-case state and
// missed this.
func (s *store) badSwitchLock(mode int) {
	switch mode {
	case 0:
		s.mu.Lock()
	default:
		s.mu.Lock()
	}
	Warm() // want `call to Warm in badSwitchLock while s\.mu is locked`
	s.mu.Unlock()
}

// goodSwitchUnlock releases on every arm before computing. The structured
// walker kept the pre-switch state and false-positived here.
func (s *store) goodSwitchUnlock(mode int) int {
	s.mu.Lock()
	switch mode {
	case 0:
		s.mu.Unlock()
	default:
		s.mu.Unlock()
	}
	return len(ComputeCounts(1))
}

// --- lock manipulation behind helpers (LockEffects facts) ---

// chainLock acquires through another helper; it is declared before lockIt
// so only the fact fixpoint, not declaration order, can resolve it.
func (s *store) chainLock() { s.lockIt() }

func (s *store) lockIt()   { s.mu.Lock() }
func (s *store) unlockIt() { s.mu.Unlock() }

// badHelper computes between helper-acquire and helper-release.
func (s *store) badHelper() {
	s.lockIt()
	Warm() // want `call to Warm in badHelper while s\.mu is locked`
	s.unlockIt()
}

// goodHelper claims under the helper-managed lock and computes outside.
func (s *store) goodHelper() []int {
	s.lockIt()
	n := len(s.items)
	s.unlockIt()
	return ComputeCounts(n)
}

// badChain: the lock travels through two helper hops.
func (s *store) badChain() {
	s.chainLock()
	Warm() // want `call to Warm in badChain while s\.mu is locked`
	s.mu.Unlock()
}
