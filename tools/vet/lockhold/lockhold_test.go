package lockhold_test

import (
	"testing"

	"divtopk/tools/vet/analysis/analysistest"
	"divtopk/tools/vet/lockhold"
)

func Test(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockhold.Analyzer, "a")
}
