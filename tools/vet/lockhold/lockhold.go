// Package lockhold flags heavy computation and channel sends performed
// while a sync.Mutex / sync.RWMutex write lock acquired in the same
// function is held.
//
// Invariant (PR 2/PR 5, BoundsCache and Registry): locks in the serving
// path guard map lookups and pointer swaps, never traversals. PR 5 fixed
// exactly this bug — BoundsCache.Warm computed descendant-label counts
// under the write lock, serializing every concurrent query behind a cold
// fill; the fixed countsFor claims a flight under the lock, releases it,
// and computes outside. The analyzer enforces that shape: between Lock()
// and Unlock() (a deferred Unlock holds to the end of the function) no
// Compute*/Warm*/Condensation-class call and no channel send may appear.
//
// The analysis is a path-sensitive must-analysis over the cfg package's
// control-flow graph: the abstract state is the set of mutex expressions
// ("s.mu") held, the join at a merge point is set intersection (a lock is
// held after a branch only if it is held on every path reaching it), and
// break/continue/goto/fallthrough edges — which the earlier structured
// walker approximated away — carry state like any other edge. A lock
// acquired on every arm of a switch is therefore held after it, and a lock
// released on every arm is not.
//
// Lock manipulation hidden behind helper methods is tracked through the
// LockEffects object fact: a method whose body leaves a receiver-rooted
// lock held on every return path (net of deferred unlocks) Sets it; one
// that unlocks a lock it never acquired Clears it. Facts flow across
// package boundaries through the facts package, and within a package the
// export pass iterates to a fixpoint so helper chains resolve regardless
// of declaration order.
//
// Closures are separate scopes: a lock acquired in the enclosing function
// is not attributed to calls inside a func literal (which typically runs
// elsewhere — goroutines, deferred cleanup).
package lockhold

import (
	"go/ast"
	"go/types"
	"maps"
	"regexp"
	"slices"
	"sort"
	"strings"

	"divtopk/tools/vet/analysis"
	"divtopk/tools/vet/analysis/cfg"
	"divtopk/tools/vet/analysis/facts"
	"divtopk/tools/vet/internal/typeutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockhold",
	Doc: "flag heavy compute or channel sends while holding a mutex write " +
		"lock acquired in the same function (directly or via a helper)",
	Run:       run,
	FactTypes: []facts.Fact{new(LockEffects)},
}

// LockEffects is the object fact exported for a method that changes its
// receiver's lock state on behalf of the caller. Paths are receiver-relative
// (".mu" for a method on s that locks s.mu); the caller rebases them onto
// the call's receiver expression, so s.lockIt() sets "s.mu".
type LockEffects struct {
	// Sets lists the locks held on every return path, net of deferred
	// unlocks: what the method acquires for its caller.
	Sets []string `json:"sets,omitempty"`
	// Clears lists the locks the method releases without having acquired
	// them itself: what it releases for its caller.
	Clears []string `json:"clears,omitempty"`
}

// AFact marks LockEffects as a serializable analyzer fact.
func (*LockEffects) AFact() {}

// heavyRE / heavyNames define the "heavy computation" class: the engine's
// per-query and per-graph traversal entry points. Extend the list when a
// new expensive subsystem entry point appears.
var heavyRE = regexp.MustCompile(`^(Compute|Warm)`)

var heavyNames = map[string]bool{
	"Condensation":          true,
	"CondenseCSR":           true,
	"DescendantLabelCounts": true,
	"BuildProduct":          true,
	"ApplyDelta":            true,
	"ApplyDeltaWithSummary": true,
	"NewMatcher":            true, // warms the whole bound index
}

func isHeavy(name string) bool { return heavyNames[name] || heavyRE.MatchString(name) }

// lockSet maps a mutex expression's source text ("c.mu", "mu") to held.
type lockSet = map[string]bool

func intersect(a, b lockSet) lockSet {
	out := lockSet{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

// heldName picks the deterministic representative lock for a diagnostic.
func heldName(locked lockSet) string {
	keys := make([]string, 0, len(locked))
	for k := range locked {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys[0]
}

func run(pass *analysis.Pass) (any, error) {
	c := &checker{pass: pass}
	var decls []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				decls = append(decls, fd)
			}
		}
	}
	// Phase 1: export LockEffects facts for methods, iterating to a fixpoint
	// so a helper that locks through another helper converges no matter the
	// declaration order.
	for round := 0; round <= len(decls); round++ {
		changed := false
		for _, fd := range decls {
			if c.exportEffects(fd) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Phase 2: report. Func literals are separate lock scopes, each analyzed
	// over its own graph with an empty entry state.
	for _, fd := range decls {
		c.check(fd, fd.Body)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				c.check(fd, lit.Body)
			}
			return true
		})
	}
	return nil, nil
}

type checker struct {
	pass *analysis.Pass
}

// hooks observe the interesting events of one replay of a block's nodes;
// any callback may be nil.
type hooks struct {
	heavy func(call *ast.CallExpr, name, held string)
	send  func(s *ast.SendStmt, held string)
	// clear fires on an Unlock of a lock not currently held — from the
	// callee's view, the unlock of a caller-held lock.
	clear func(key string)
}

// mutexOp matches call as <mutex>.Lock() / <mutex>.Unlock() on sync.Mutex
// or sync.RWMutex (write side only; RLock/RUnlock never match).
func (c *checker) mutexOp(call *ast.CallExpr) (key string, lock, ok bool) {
	if len(call.Args) != 0 {
		return "", false, false
	}
	for _, method := range [2]string{"Lock", "Unlock"} {
		if recv, hit := typeutil.MethodCall(c.pass.TypesInfo, call, "sync", "Mutex", method); hit {
			return types.ExprString(recv), method == "Lock", true
		}
		if recv, hit := typeutil.MethodCall(c.pass.TypesInfo, call, "sync", "RWMutex", method); hit {
			return types.ExprString(recv), method == "Lock", true
		}
	}
	return "", false, false
}

// callEffects resolves call to a method carrying a LockEffects fact,
// returning the fact and the caller-side receiver prefix ("s" for
// s.lockIt(), so the fact's ".mu" rebases to "s.mu").
func (c *checker) callEffects(call *ast.CallExpr) (*LockEffects, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	fn, ok := c.pass.TypesInfo.ObjectOf(sel.Sel).(*types.Func)
	if !ok {
		return nil, "", false
	}
	var eff LockEffects
	if !c.pass.ImportObjectFact(fn, &eff) {
		return nil, "", false
	}
	return &eff, types.ExprString(sel.X), true
}

// step applies one block node to locked in place, firing h's callbacks.
// Func literals and go statements are other execution contexts; defers are
// handled by the graph (collected, applied at exit where an analysis wants
// them).
func (c *checker) step(n ast.Node, locked lockSet, h hooks) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch v := x.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.SendStmt:
			if h.send != nil && len(locked) > 0 {
				h.send(v, heldName(locked))
			}
		case *ast.CallExpr:
			if key, lock, ok := c.mutexOp(v); ok {
				if lock {
					locked[key] = true
				} else {
					if !locked[key] && h.clear != nil {
						h.clear(key)
					}
					delete(locked, key)
				}
				return false
			}
			if eff, prefix, ok := c.callEffects(v); ok {
				for _, suf := range eff.Clears {
					k := prefix + suf
					if !locked[k] && h.clear != nil {
						h.clear(k)
					}
					delete(locked, k)
				}
				for _, suf := range eff.Sets {
					locked[prefix+suf] = true
				}
			}
			if name := typeutil.CalleeName(v); isHeavy(name) && len(locked) > 0 && h.heavy != nil {
				h.heavy(v, name, heldName(locked))
			}
		}
		return true
	})
}

// flow is the must-analysis: intersection join, equality on the lock set.
func (c *checker) flow() cfg.Flow {
	return cfg.Flow{
		Entry: lockSet{},
		Transfer: func(b *cfg.Block, in cfg.State) cfg.State {
			locked := maps.Clone(in.(lockSet))
			if locked == nil {
				locked = lockSet{}
			}
			for _, n := range b.Nodes {
				c.step(n, locked, hooks{})
			}
			return locked
		},
		Join:  func(a, b cfg.State) cfg.State { return intersect(a.(lockSet), b.(lockSet)) },
		Equal: func(a, b cfg.State) bool { return maps.Equal(a.(lockSet), b.(lockSet)) },
	}
}

// sweep replays every reachable block over its fixpoint in-state, firing
// h's callbacks exactly once per program point (each block is replayed
// once, in index order, with its stabilized state).
func (c *checker) sweep(g *cfg.Graph, in map[*cfg.Block]cfg.State, h hooks) {
	for _, b := range g.Blocks {
		st, ok := in[b]
		if !ok {
			continue
		}
		locked := maps.Clone(st.(lockSet))
		for _, n := range b.Nodes {
			c.step(n, locked, h)
		}
	}
}

// check reports heavy calls and sends made while a lock is must-held in
// body; fd names the enclosing declaration for diagnostics (also when body
// belongs to a literal nested inside it).
func (c *checker) check(fd *ast.FuncDecl, body *ast.BlockStmt) {
	g := cfg.New(body)
	in := g.Fixpoint(c.flow())
	c.sweep(g, in, hooks{
		heavy: func(call *ast.CallExpr, name, held string) {
			c.pass.Reportf(call.Pos(),
				"call to %s in %s while %s is locked: heavy computation must run outside "+
					"the lock (claim state under the lock, release, compute, re-lock to publish)",
				name, typeutil.FuncFor(fd), held)
		},
		send: func(s *ast.SendStmt, held string) {
			c.pass.Reportf(s.Arrow,
				"channel send in %s while %s is locked: a blocked receiver deadlocks every "+
					"other user of the lock — send after unlocking",
				typeutil.FuncFor(fd), held)
		},
	})
}

// exportEffects computes fd's receiver-rooted lock effects and exports the
// LockEffects fact when it changed, reporting whether it did.
func (c *checker) exportEffects(fd *ast.FuncDecl) bool {
	recv := receiverName(fd)
	if recv == "" {
		return false
	}
	obj, ok := c.pass.TypesInfo.ObjectOf(fd.Name).(*types.Func)
	if !ok {
		return false
	}
	g := cfg.New(fd.Body)
	in := g.Fixpoint(c.flow())
	exit := lockSet{}
	if st, ok := in[g.Exit]; ok {
		exit = maps.Clone(st.(lockSet))
	}
	// Deferred unlocks run at exit: they cancel a lock the method acquired
	// itself, or clear one the caller holds.
	clears := map[string]bool{}
	for _, d := range g.Defers {
		if key, lock, ok := c.mutexOp(d.Call); ok && !lock {
			if exit[key] {
				delete(exit, key)
			} else {
				clears[key] = true
			}
		}
	}
	c.sweep(g, in, hooks{clear: func(key string) { clears[key] = true }})

	prefix := recv + "."
	var eff LockEffects
	for key := range exit {
		if strings.HasPrefix(key, prefix) {
			eff.Sets = append(eff.Sets, strings.TrimPrefix(key, recv))
		}
	}
	for key := range clears {
		if strings.HasPrefix(key, prefix) {
			eff.Clears = append(eff.Clears, strings.TrimPrefix(key, recv))
		}
	}
	sort.Strings(eff.Sets)
	sort.Strings(eff.Clears)
	if len(eff.Sets) == 0 && len(eff.Clears) == 0 {
		return false
	}
	var old LockEffects
	if c.pass.ImportObjectFact(obj, &old) &&
		slices.Equal(old.Sets, eff.Sets) && slices.Equal(old.Clears, eff.Clears) {
		return false
	}
	c.pass.ExportObjectFact(obj, &eff)
	return true
}

func receiverName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}
