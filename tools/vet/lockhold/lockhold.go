// Package lockhold flags heavy computation and channel sends performed
// while a sync.Mutex / sync.RWMutex write lock acquired in the same
// function is held.
//
// Invariant (PR 2/PR 5, BoundsCache and Registry): locks in the serving
// path guard map lookups and pointer swaps, never traversals. PR 5 fixed
// exactly this bug — BoundsCache.Warm computed descendant-label counts
// under the write lock, serializing every concurrent query behind a cold
// fill; the fixed countsFor claims a flight under the lock, releases it,
// and computes outside. The analyzer enforces that shape: between Lock()
// and Unlock() (a deferred Unlock holds to the end of the function) no
// Compute*/Warm*/Condensation-class call and no channel send may appear.
//
// The walk is a structured approximation of control flow: early-return
// branches that unlock and leave do not clear the lock on the fall-through
// path, and a lock is only considered held after a branch if it is held on
// every merging path. Closures are separate scopes: a lock acquired in the
// enclosing function is not attributed to calls inside a func literal
// (which typically runs elsewhere — goroutines, deferred cleanup).
package lockhold

import (
	"go/ast"
	"maps"
	"regexp"

	"divtopk/tools/vet/analysis"
	"divtopk/tools/vet/internal/typeutil"
	"go/types"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockhold",
	Doc: "flag heavy compute or channel sends while holding a mutex write " +
		"lock acquired in the same function",
	Run: run,
}

// heavyRE / heavyNames define the "heavy computation" class: the engine's
// per-query and per-graph traversal entry points. Extend the list when a
// new expensive subsystem entry point appears.
var heavyRE = regexp.MustCompile(`^(Compute|Warm)`)

var heavyNames = map[string]bool{
	"Condensation":          true,
	"CondenseCSR":           true,
	"DescendantLabelCounts": true,
	"BuildProduct":          true,
	"ApplyDelta":            true,
	"ApplyDeltaWithSummary": true,
	"NewMatcher":            true, // warms the whole bound index
}

func isHeavy(name string) bool { return heavyNames[name] || heavyRE.MatchString(name) }

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &walker{pass: pass, fd: fd}
			w.block(fd.Body, make(lockSet))
			// Func literals are separate lock scopes, each walked with an
			// empty entry state.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					w.block(lit.Body, make(lockSet))
				}
				return true
			})
		}
	}
	return nil, nil
}

// lockSet maps a mutex expression's source text ("c.mu", "mu") to held.
type lockSet map[string]bool

func intersect(a, b lockSet) lockSet {
	out := make(lockSet)
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

type walker struct {
	pass *analysis.Pass
	fd   *ast.FuncDecl
}

// mutexOp matches e as <mutex>.Lock() / <mutex>.Unlock() on sync.Mutex or
// sync.RWMutex (write side only; RLock/RUnlock never match).
func (w *walker) mutexOp(e ast.Expr) (key string, lock bool, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall || len(call.Args) != 0 {
		return "", false, false
	}
	for _, method := range [2]string{"Lock", "Unlock"} {
		if recv, hit := typeutil.MethodCall(w.pass.TypesInfo, call, "sync", "Mutex", method); hit {
			return types.ExprString(recv), method == "Lock", true
		}
		if recv, hit := typeutil.MethodCall(w.pass.TypesInfo, call, "sync", "RWMutex", method); hit {
			return types.ExprString(recv), method == "Lock", true
		}
	}
	return "", false, false
}

// scan reports heavy calls inside expression e (not descending into func
// literals) while any lock is held.
func (w *walker) scan(e ast.Expr, locked lockSet) {
	if e == nil || len(locked) == 0 {
		return
	}
	held := ""
	for k := range locked {
		held = k
		break
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if name := typeutil.CalleeName(x); isHeavy(name) {
				w.pass.Reportf(x.Pos(),
					"call to %s in %s while %s is locked: heavy computation must run outside "+
						"the lock (claim state under the lock, release, compute, re-lock to publish)",
					name, typeutil.FuncFor(w.fd), held)
			}
		}
		return true
	})
}

// stmt walks one statement, returning the lock state after it.
func (w *walker) stmt(s ast.Stmt, locked lockSet) lockSet {
	switch st := s.(type) {
	case *ast.ExprStmt:
		if key, lock, ok := w.mutexOp(st.X); ok {
			if lock {
				locked[key] = true
			} else {
				delete(locked, key)
			}
			return locked
		}
		w.scan(st.X, locked)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			w.scan(e, locked)
		}
		for _, e := range st.Lhs {
			w.scan(e, locked)
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.scan(v, locked)
					}
				}
			}
		}
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held to the end of the function:
		// deliberately no state change. Other deferred calls run at return
		// time, outside this walk's linear order; skip them.
	case *ast.GoStmt:
		// Runs concurrently; not under this goroutine's locks.
	case *ast.SendStmt:
		w.scan(st.Chan, locked)
		w.scan(st.Value, locked)
		if len(locked) > 0 {
			held := ""
			for k := range locked {
				held = k
				break
			}
			w.pass.Reportf(st.Arrow,
				"channel send in %s while %s is locked: a blocked receiver deadlocks every "+
					"other user of the lock — send after unlocking",
				typeutil.FuncFor(w.fd), held)
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			w.scan(e, locked)
		}
	case *ast.IfStmt:
		if st.Init != nil {
			locked = w.stmt(st.Init, locked)
		}
		w.scan(st.Cond, locked)
		postBody := w.block(st.Body, maps.Clone(locked))
		bodyTerm := typeutil.BlockTerminates(st.Body)
		postElse := locked
		elseTerm := false
		if st.Else != nil {
			postElse = w.stmt(st.Else, maps.Clone(locked))
			elseTerm = typeutil.Terminates(st.Else)
		}
		switch {
		case bodyTerm && elseTerm:
			return locked
		case bodyTerm:
			return postElse
		case elseTerm:
			return postBody
		default:
			return intersect(postBody, postElse)
		}
	case *ast.BlockStmt:
		return w.block(st, locked)
	case *ast.LabeledStmt:
		return w.stmt(st.Stmt, locked)
	case *ast.ForStmt:
		if st.Init != nil {
			locked = w.stmt(st.Init, locked)
		}
		w.scan(st.Cond, locked)
		post := w.block(st.Body, maps.Clone(locked))
		if st.Post != nil {
			w.stmt(st.Post, post)
		}
		// The loop may run zero times; a lock is held afterwards only if it
		// is held both on entry and after one iteration.
		return intersect(locked, post)
	case *ast.RangeStmt:
		w.scan(st.X, locked)
		post := w.block(st.Body, maps.Clone(locked))
		return intersect(locked, post)
	case *ast.SwitchStmt:
		if st.Init != nil {
			locked = w.stmt(st.Init, locked)
		}
		w.scan(st.Tag, locked)
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, maps.Clone(locked))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, maps.Clone(locked))
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if cc.Comm != nil {
					w.stmt(cc.Comm, maps.Clone(locked))
				}
				w.stmts(cc.Body, maps.Clone(locked))
			}
		}
	case *ast.IncDecStmt:
		w.scan(st.X, locked)
	}
	return locked
}

func (w *walker) stmts(list []ast.Stmt, locked lockSet) lockSet {
	for _, s := range list {
		locked = w.stmt(s, locked)
	}
	return locked
}

func (w *walker) block(b *ast.BlockStmt, locked lockSet) lockSet {
	if b == nil {
		return locked
	}
	return w.stmts(b.List, locked)
}
