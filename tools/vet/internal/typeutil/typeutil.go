// Package typeutil holds the small type- and AST-inspection helpers shared
// by the divtopk-vet analyzers. The analyzers match types structurally (by
// package name + type name) rather than by full import path, so they apply
// unchanged to their minimized analysistest packages.
package typeutil

import (
	"go/ast"
	"go/types"
)

// IsNamed reports whether t (after stripping pointers and aliases) is the
// named type pkgName.typeName. Generic instantiations match their origin
// (sync/atomic.Pointer[G] matches "atomic", "Pointer").
func IsNamed(t types.Type, pkgName, typeName string) bool {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
			continue
		case *types.Alias:
			t = types.Unalias(t)
			continue
		case *types.Named:
			obj := u.Obj()
			return obj != nil && obj.Name() == typeName &&
				obj.Pkg() != nil && obj.Pkg().Name() == pkgName
		default:
			return false
		}
	}
}

// CalleeName returns the bare name a call invokes: the selector's Sel for
// method/package calls, the identifier for plain calls, "" otherwise.
func CalleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// MethodCall matches call as a method invocation named method on a receiver
// of named type pkgName.typeName and returns the receiver expression.
func MethodCall(info *types.Info, call *ast.CallExpr, pkgName, typeName, method string) (ast.Expr, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return nil, false
	}
	tv, ok := info.Types[sel.X]
	if !ok || !IsNamed(tv.Type, pkgName, typeName) {
		return nil, false
	}
	return sel.X, true
}

// ObjOf resolves an expression to the object of its root identifier:
// `m` and `m.cur` both resolve to m's object; anything rooted elsewhere
// (call results, index expressions) yields nil.
func ObjOf(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.ObjectOf(x)
		case *ast.SelectorExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// FuncFor returns the innermost enclosing named function declaration name
// for a node path maintained by the caller; helper for diagnostics.
func FuncFor(decl *ast.FuncDecl) string {
	if decl == nil {
		return "package scope"
	}
	return decl.Name.Name
}

// Terminates reports whether a statement definitely transfers control out
// of the enclosing block: return, branch (break/continue/goto), panic, or
// a bare block ending in one of those.
func Terminates(s ast.Stmt) bool {
	switch st := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		if n := len(st.List); n > 0 {
			return Terminates(st.List[n-1])
		}
	}
	return false
}

// BlockTerminates reports whether the last statement of a block terminates.
func BlockTerminates(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	return Terminates(b.List[len(b.List)-1])
}
