// Package analysis is a minimal, stdlib-only subset of the
// golang.org/x/tools/go/analysis API that the divtopk-vet analyzers are
// written against. The environment building this repository is offline, so
// x/tools cannot be fetched; this package keeps the analyzers
// source-compatible with the upstream shape (Analyzer, Pass, Diagnostic) so
// porting them to the real framework is an import swap, not a rewrite.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one analysis: a name (also the //lint:allow key), a
// documentation string whose first line states the invariant, and the Run
// function applied once per package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) (any, error)
}

// Pass carries one package's syntax and type information to an analyzer's
// Run function.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	// PkgPath is the import path the package was loaded under. For packages
	// of the main module it equals Pkg.Path(); analysistest packages get
	// their testdata-relative path (e.g. "a").
	PkgPath   string
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// NewInfo returns a types.Info with every map the analyzers consult
// allocated. Loaders fill it during type checking.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}
