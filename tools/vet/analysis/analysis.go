// Package analysis is a minimal, stdlib-only subset of the
// golang.org/x/tools/go/analysis API that the divtopk-vet analyzers are
// written against. The environment building this repository is offline, so
// x/tools cannot be fetched; this package keeps the analyzers
// source-compatible with the upstream shape (Analyzer, Pass, Diagnostic) so
// porting them to the real framework is an import swap, not a rewrite.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"divtopk/tools/vet/analysis/facts"
)

// Analyzer describes one analysis: a name (also the //lint:allow key), a
// documentation string whose first line states the invariant, and the Run
// function applied once per package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) (any, error)
	// FactTypes declares the fact types this analyzer may export (see the
	// facts package); drivers register them before decoding any .vetx input.
	// An analyzer without fact types takes part in no cross-package flow.
	FactTypes []facts.Fact
}

// Pass carries one package's syntax and type information to an analyzer's
// Run function.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	// PkgPath is the import path the package was loaded under. For packages
	// of the main module it equals Pkg.Path(); analysistest packages get
	// their testdata-relative path (e.g. "a").
	PkgPath   string
	TypesInfo *types.Info
	Report    func(Diagnostic)
	// FactSet is the session's cross-package fact store, shared by every
	// analyzer and package of one driver run; nil when the driver carries no
	// facts. Analyzers use the Export/Import methods below, never the set
	// directly.
	FactSet *facts.Set
}

// ExportObjectFact attaches fact to obj under this pass's analyzer. Facts
// survive the package boundary: an importing package's pass reads them back
// with ImportObjectFact. Only package-level funcs/methods can carry facts;
// exports on other objects are dropped.
func (p *Pass) ExportObjectFact(obj types.Object, fact facts.Fact) {
	if p.FactSet != nil && obj != nil {
		p.FactSet.PutObject(p.Analyzer.Name, obj, fact)
	}
}

// ImportObjectFact copies the fact attached to obj by this analyzer (in this
// package or any dependency analyzed earlier) into fact, reporting whether
// one was found.
func (p *Pass) ImportObjectFact(obj types.Object, fact facts.Fact) bool {
	return p.FactSet != nil && obj != nil && p.FactSet.GetObject(p.Analyzer.Name, obj, fact)
}

// ExportPackageFact attaches fact to the package being analyzed.
func (p *Pass) ExportPackageFact(fact facts.Fact) {
	if p.FactSet != nil {
		p.FactSet.PutPackage(p.Analyzer.Name, p.Pkg.Path(), fact)
	}
}

// ImportPackageFact copies the fact attached to pkg by this analyzer into
// fact, reporting whether one was found.
func (p *Pass) ImportPackageFact(pkg *types.Package, fact facts.Fact) bool {
	return p.FactSet != nil && pkg != nil && p.FactSet.GetPackage(p.Analyzer.Name, pkg.Path(), fact)
}

// RegisterFactTypes registers every analyzer's declared fact types with the
// facts wire codec; drivers call it once before decoding .vetx input.
func RegisterFactTypes(analyzers []*Analyzer) {
	for _, a := range analyzers {
		if len(a.FactTypes) > 0 {
			facts.Register(a.Name, a.FactTypes...)
		}
	}
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// NewInfo returns a types.Info with every map the analyzers consult
// allocated. Loaders fill it during type checking.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}
