package facts

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

type testFact struct {
	Kind string `json:"kind"`
	N    int    `json:"n"`
}

func (*testFact) AFact() {}

type otherFact struct{ S string }

func (*otherFact) AFact() {}

// checkPkg type-checks src as package path and returns its *types.Package.
func checkPkg(t *testing.T, path, src string) *types.Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path+".go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(path, fset, []*ast.File{f}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

func TestObjectKey(t *testing.T) {
	pkg := checkPkg(t, "example.com/g", `package g
type T struct{}
func (t *T) M() {}
func F() {}
var V int
`)
	fObj := pkg.Scope().Lookup("F")
	if got, want := ObjectKey(fObj), "example.com/g:F"; got != want {
		t.Errorf("ObjectKey(F) = %q, want %q", got, want)
	}
	tObj := pkg.Scope().Lookup("T").Type()
	m, _, _ := types.LookupFieldOrMethod(tObj, true, pkg, "M")
	if got, want := ObjectKey(m), "example.com/g:T.M"; got != want {
		t.Errorf("ObjectKey(T.M) = %q, want %q", got, want)
	}
	if got := ObjectKey(pkg.Scope().Lookup("V")); got != "" {
		t.Errorf("ObjectKey(V) = %q, want \"\" (vars cannot carry facts)", got)
	}
}

func TestRoundTrip(t *testing.T) {
	Register("det", new(testFact))
	Register("oth", new(otherFact))

	pkg := checkPkg(t, "example.com/g", `package g
func F() {}
`)
	obj := pkg.Scope().Lookup("F")

	s := NewSet()
	s.PutObject("det", obj, &testFact{Kind: "deterministic", N: 7})
	s.PutPackage("det", "example.com/g", &testFact{Kind: "pkg", N: 1})
	s.PutPackage("oth", "example.com/g", &otherFact{S: "x"})
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}

	data, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("Encode produced empty output")
	}

	s2 := NewSet()
	if err := s2.Decode(data); err != nil {
		t.Fatal(err)
	}
	var got testFact
	if !s2.GetObject("det", obj, &got) || got.Kind != "deterministic" || got.N != 7 {
		t.Errorf("object fact after round trip = %+v, found=%v", got, s2.GetObject("det", obj, &got))
	}
	var gp testFact
	if !s2.GetPackage("det", "example.com/g", &gp) || gp.Kind != "pkg" {
		t.Errorf("package fact after round trip = %+v", gp)
	}
	var oth otherFact
	if !s2.GetPackage("oth", "example.com/g", &oth) || oth.S != "x" {
		t.Errorf("second analyzer's package fact after round trip = %+v", oth)
	}
	// Wrong analyzer name and wrong concrete type both miss.
	if s2.GetObject("oth", obj, &got) {
		t.Error("GetObject with wrong analyzer succeeded")
	}
	if s2.GetObject("det", obj, &oth) {
		t.Error("GetObject into wrong concrete type succeeded")
	}
}

func TestDecodeEmptyAndUnknown(t *testing.T) {
	s := NewSet()
	if err := s.Decode(nil); err != nil {
		t.Errorf("Decode(nil) = %v, want nil (PR6 wrote empty vetx stubs)", err)
	}
	if err := s.Decode([]byte{}); err != nil {
		t.Errorf("Decode(empty) = %v, want nil", err)
	}
	// Facts of analyzers this binary does not know are skipped, not fatal.
	if err := s.Decode([]byte(`{"divtopk_vetx":1,"objects":{"p:F":[{"analyzer":"nope","type":"gone","value":{}}]}}`)); err != nil {
		t.Errorf("Decode(unknown analyzer) = %v, want nil", err)
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d after skipped decodes, want 0", s.Len())
	}
	if err := s.Decode([]byte(`{"divtopk_vetx":99}`)); err == nil {
		t.Error("Decode of future format version succeeded, want error")
	}
}
