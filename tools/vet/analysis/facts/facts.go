// Package facts carries analyzer facts — knowledge an analyzer derives
// about a package's objects and publishes for the analysis of importing
// packages — across package boundaries for the divtopk-vet suite. It is the
// stdlib-only counterpart of the go/analysis fact mechanism: an analyzer
// declares its fact types (Analyzer.FactTypes), attaches facts to objects or
// packages during its Run (Pass.ExportObjectFact), and reads facts the same
// analyzer produced for dependencies (Pass.ImportObjectFact).
//
// Two transports feed the same in-memory Set:
//
//   - Standalone, packages are analyzed in dependency order (go list -deps
//     emits dependencies before their importers) against one shared Set, so
//     imports are plain map lookups.
//   - Under cmd/go's -vettool protocol, each compilation unit decodes the
//     .vetx files of its direct imports (cfg.PackageVetx) into its Set and
//     encodes the full Set — imported facts included, which is what makes
//     fact flow transitive with only direct-import loading — to
//     cfg.VetxOutput.
//
// Facts are keyed by a stable object key (package path plus the receiver-
// qualified function name) rather than by export-data object identity, so
// the serialized form is a small, inspectable JSON document instead of a
// binary object graph. Only package-level functions and methods can carry
// object facts; that is the only granularity the suite's analyzers need.
package facts

import (
	"encoding/json"
	"fmt"
	"go/types"
	"reflect"
	"sort"
)

// Fact is a marker interface for analyzer fact types, mirroring
// analysis.Fact upstream: a fact type is a pointer to a JSON-serializable
// struct with an AFact method.
type Fact interface{ AFact() }

// registry maps analyzer name -> fact type name -> concrete type, filled by
// Register from each analyzer's FactTypes declaration. Decoding uses it to
// rebuild concrete fact values.
var registry = map[string]map[string]reflect.Type{}

// Register declares the fact types analyzer name may produce. Calling it
// twice for the same analyzer is harmless; prototypes must be pointers to
// structs.
func Register(analyzer string, prototypes ...Fact) {
	m := registry[analyzer]
	if m == nil {
		m = map[string]reflect.Type{}
		registry[analyzer] = m
	}
	for _, p := range prototypes {
		t := reflect.TypeOf(p)
		if t == nil || t.Kind() != reflect.Pointer {
			panic(fmt.Sprintf("facts.Register(%s): prototype %T is not a pointer", analyzer, p))
		}
		m[t.Elem().Name()] = t.Elem()
	}
}

// ObjectKey returns the stable serialization key of obj, or "" if the object
// cannot carry facts (only package-level funcs and methods can). Methods are
// keyed through their receiver's named type, so the key is reconstructible
// from export data on the importing side.
func ObjectKey(obj types.Object) string {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return ""
		}
		return fn.Pkg().Path() + ":" + named.Obj().Name() + "." + fn.Name()
	}
	return fn.Pkg().Path() + ":" + fn.Name()
}

// entry is one stored fact.
type entry struct {
	analyzer string
	typeName string
	fact     Fact
}

// Set is the fact store of one analysis session (standalone) or one
// compilation unit (vet tool). It is not safe for concurrent use; the
// drivers are single-threaded.
type Set struct {
	obj map[string]map[string]entry // objectKey -> analyzer -> entry
	pkg map[string]map[string]entry // pkgPath -> analyzer -> entry
}

// NewSet returns an empty fact set.
func NewSet() *Set {
	return &Set{
		obj: map[string]map[string]entry{},
		pkg: map[string]map[string]entry{},
	}
}

func put(m map[string]map[string]entry, key, analyzer string, f Fact) {
	inner := m[key]
	if inner == nil {
		inner = map[string]entry{}
		m[key] = inner
	}
	inner[analyzer] = entry{analyzer: analyzer, typeName: reflect.TypeOf(f).Elem().Name(), fact: f}
}

// get copies the stored fact (if any) into out, which must be a pointer of
// the stored fact's concrete type.
func get(m map[string]map[string]entry, key, analyzer string, out Fact) bool {
	e, ok := m[key][analyzer]
	if !ok {
		return false
	}
	ov := reflect.ValueOf(out)
	ev := reflect.ValueOf(e.fact)
	if ov.Type() != ev.Type() {
		return false
	}
	ov.Elem().Set(ev.Elem())
	return true
}

// PutObject attaches f to obj for analyzer. Objects that cannot carry facts
// are silently skipped (matching upstream's tolerance for local objects).
func (s *Set) PutObject(analyzer string, obj types.Object, f Fact) {
	if key := ObjectKey(obj); key != "" {
		put(s.obj, key, analyzer, f)
	}
}

// GetObject copies analyzer's fact for obj into out and reports whether one
// was found.
func (s *Set) GetObject(analyzer string, obj types.Object, out Fact) bool {
	key := ObjectKey(obj)
	return key != "" && get(s.obj, key, analyzer, out)
}

// PutPackage attaches f to package pkgPath for analyzer.
func (s *Set) PutPackage(analyzer, pkgPath string, f Fact) {
	put(s.pkg, pkgPath, analyzer, f)
}

// GetPackage copies analyzer's fact for pkgPath into out and reports whether
// one was found.
func (s *Set) GetPackage(analyzer, pkgPath string, out Fact) bool {
	return get(s.pkg, pkgPath, analyzer, out)
}

// Len returns the number of stored facts (objects and packages).
func (s *Set) Len() int {
	n := 0
	for _, m := range s.obj {
		n += len(m)
	}
	for _, m := range s.pkg {
		n += len(m)
	}
	return n
}

// wireFact is the serialized form of one fact.
type wireFact struct {
	Analyzer string          `json:"analyzer"`
	Type     string          `json:"type"`
	Value    json.RawMessage `json:"value"`
}

// wireSet is the .vetx document: format-versioned so a future layout change
// fails loudly instead of decoding garbage.
type wireSet struct {
	Version  int                   `json:"divtopk_vetx"`
	Objects  map[string][]wireFact `json:"objects,omitempty"`
	Packages map[string][]wireFact `json:"packages,omitempty"`
}

const wireVersion = 1

func encodeSide(m map[string]map[string]entry) map[string][]wireFact {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string][]wireFact, len(m))
	for key, inner := range m {
		fs := make([]wireFact, 0, len(inner))
		for _, e := range inner {
			raw, err := json.Marshal(e.fact)
			if err != nil {
				continue // unmarshalable facts are dropped, not fatal
			}
			fs = append(fs, wireFact{Analyzer: e.analyzer, Type: e.typeName, Value: raw})
		}
		sort.Slice(fs, func(i, j int) bool { return fs[i].Analyzer < fs[j].Analyzer })
		out[key] = fs
	}
	return out
}

// Encode serializes the whole set — own and imported facts alike, so a
// package's .vetx transitively carries everything its importers need.
func (s *Set) Encode() ([]byte, error) {
	return json.Marshal(wireSet{
		Version:  wireVersion,
		Objects:  encodeSide(s.obj),
		Packages: encodeSide(s.pkg),
	})
}

func decodeSide(dst map[string]map[string]entry, src map[string][]wireFact) {
	for key, fs := range src {
		for _, wf := range fs {
			t, ok := registry[wf.Analyzer][wf.Type]
			if !ok {
				continue // unknown analyzer or type: stale file, skip
			}
			v := reflect.New(t)
			if err := json.Unmarshal(wf.Value, v.Interface()); err != nil {
				continue
			}
			f, ok := v.Interface().(Fact)
			if !ok {
				continue
			}
			put(dst, key, wf.Analyzer, f)
		}
	}
}

// Decode merges the facts serialized in data into s. Empty input (the stub
// vetx files earlier versions of the tool wrote) is accepted and adds
// nothing. Facts of unregistered analyzers or types are skipped.
func (s *Set) Decode(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var ws wireSet
	if err := json.Unmarshal(data, &ws); err != nil {
		return fmt.Errorf("facts: decoding vetx: %v", err)
	}
	if ws.Version != wireVersion {
		return fmt.Errorf("facts: vetx format version %d, want %d", ws.Version, wireVersion)
	}
	decodeSide(s.obj, ws.Objects)
	decodeSide(s.pkg, ws.Packages)
	return nil
}
