package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

const suppressSrc = `package p

func a() {
	//lint:allow arenapair set escapes to the caller
	x := 1
	_ = x
}

func b() {
	//lint:allow
	y := 2
	_ = y
}

func c() {
	//lint:allow lockhold
	z := 3
	_ = z
}
`

func parse(t *testing.T) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", suppressSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

func TestSuppressionsParse(t *testing.T) {
	fset, files := parse(t)
	sups, bad := Suppressions(fset, files)
	if len(sups) != 1 {
		t.Fatalf("got %d well-formed suppressions, want 1: %+v", len(sups), sups)
	}
	s := sups[0]
	if s.Analyzer != "arenapair" || s.Reason != "set escapes to the caller" {
		t.Errorf("parsed suppression = %+v", s)
	}
	if len(bad) != 2 {
		t.Fatalf("got %d malformed suppressions, want 2 (bare + missing reason): %+v", len(bad), bad)
	}
	for _, d := range bad {
		if !strings.Contains(d.Message, "suppression") {
			t.Errorf("malformed-suppression diagnostic %q does not mention suppression", d.Message)
		}
	}
}

func TestFilterSuppressed(t *testing.T) {
	fset, files := parse(t)
	sups, _ := Suppressions(fset, files)
	// The suppression in func a sits on line 4; it must cover diagnostics on
	// its own line and the next, for analyzer arenapair only.
	pos := func(line int) token.Pos {
		return fset.File(files[0].Pos()).LineStart(line)
	}
	diags := []Diagnostic{
		{Pos: pos(5), Message: "on suppressed line"},
		{Pos: pos(6), Message: "past the suppressed line"},
	}
	kept := FilterSuppressed(fset, sups, "arenapair", diags)
	if len(kept) != 1 || kept[0].Message != "past the suppressed line" {
		t.Errorf("arenapair filter kept %+v, want only the line-6 diagnostic", kept)
	}
	kept = FilterSuppressed(fset, sups, "curload", diags)
	if len(kept) != 2 {
		t.Errorf("curload filter kept %+v, want both diagnostics (name mismatch)", kept)
	}
}

func TestStaleSuppressions(t *testing.T) {
	fset, files := parse(t)
	sups, _ := Suppressions(fset, files)

	// Before any filtering happened, every suppression is unused → stale.
	stale := Stale(sups)
	if len(stale) != 1 {
		t.Fatalf("Stale before filtering = %d diagnostics, want 1", len(stale))
	}
	if msg := stale[0].Message; !strings.Contains(msg, "arenapair") || !strings.Contains(msg, "set escapes to the caller") {
		t.Errorf("stale diagnostic %q should name the analyzer and quote the reason", msg)
	}

	// A suppression that actually dropped a diagnostic is not stale.
	pos := fset.File(files[0].Pos()).LineStart(5)
	FilterSuppressed(fset, sups, "arenapair", []Diagnostic{{Pos: pos, Message: "covered"}})
	if stale = Stale(sups); len(stale) != 0 {
		t.Errorf("Stale after a matching finding = %+v, want none", stale)
	}
}
