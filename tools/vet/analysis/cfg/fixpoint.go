package cfg

// State is one analysis's abstract state at a program point. States are
// treated as immutable by the driver: Transfer must return a fresh value (or
// the unchanged input), never mutate its argument in place.
type State any

// Flow configures one forward dataflow analysis over a Graph.
//
// The driver models unreached blocks with a nil State, and nil is the
// identity of Join for every analysis: for a may-analysis (union join) an
// unreached predecessor contributes nothing; for a must-analysis
// (intersection join) it is "top" — no evidence against any element — and
// must not weaken the join. Join and Equal are therefore only called with
// non-nil arguments.
type Flow struct {
	// Entry is the state on entry to the function.
	Entry State
	// Transfer computes the state after executing block b from the state
	// before it.
	Transfer func(b *Block, in State) State
	// Join merges the states of two converging paths: set intersection for a
	// must-analysis (lock held on every path), set union for a may-analysis
	// (arena set outstanding on some path).
	Join func(a, b State) State
	// Equal reports whether two states are equal; the fixpoint has been
	// reached when every reachable block's in-state stops changing.
	Equal func(a, b State) bool
}

// Fixpoint runs f over g with a worklist until the in-states stabilize and
// returns the in-state of every reachable block (unreachable blocks are
// absent). Blocks are processed in index order, which makes the iteration —
// and therefore any rounding of non-monotone transfer functions —
// deterministic.
func (g *Graph) Fixpoint(f Flow) map[*Block]State {
	in := make(map[*Block]State, len(g.Blocks))
	out := make(map[*Block]State, len(g.Blocks))
	in[g.Entry] = f.Entry

	inList := make([]bool, len(g.Blocks))
	work := []*Block{g.Entry}
	inList[g.Entry.Index] = true

	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inList[b.Index] = false

		o := f.Transfer(b, in[b])
		prev, seen := out[b]
		if seen && f.Equal(prev, o) {
			continue
		}
		out[b] = o
		for _, s := range b.Succs {
			// Recompute s's in-state as the join over its reached preds.
			var ns State
			reached := false
			for _, p := range s.preds {
				po, ok := out[p]
				if !ok {
					continue
				}
				if !reached {
					ns, reached = po, true
				} else {
					ns = f.Join(ns, po)
				}
			}
			if !reached {
				continue
			}
			if old, ok := in[s]; ok && f.Equal(old, ns) {
				continue
			}
			in[s] = ns
			if !inList[s.Index] {
				inList[s.Index] = true
				work = append(work, s)
			}
		}
	}
	return in
}
