// Package cfg lowers Go function bodies into a control-flow graph of basic
// blocks, and provides a worklist fixpoint driver over it, for the
// divtopk-vet dataflow analyzers.
//
// The lowering is the ast-to-CFG step the stock go/analysis ecosystem's
// ctrlflow pass performs: statements and the expressions evaluated with them
// are appended to the current block in execution order, and every construct
// that forks or rejoins control — if/else, for/range loops (including break,
// continue, and the zero-iteration exit), switch and type switch with
// fallthrough, select, goto and labels — becomes explicit edges between
// blocks. return statements and calls to panic edge to a single synthetic
// Exit block, so "state at function exit" is one join. defer statements are
// not placed in any block: their calls run at every exit in LIFO order, so
// they are collected on the Graph for analyses to apply against the Exit
// state (lockhold treats a deferred Unlock as holding to the end; arenapair
// treats a deferred Put as releasing at exit).
//
// Function literals are deliberately not descended into: a FuncLit body is a
// separate execution context (a goroutine, a deferred cleanup, a callback)
// and gets its own Graph; see New's contract.
package cfg

import "go/ast"

// Graph is the control-flow graph of one function body.
type Graph struct {
	// Blocks lists every block in creation order; Blocks[0] is Entry.
	// Unreachable blocks (code after return, empty join targets) may appear;
	// Fixpoint never visits them.
	Blocks []*Block
	Entry  *Block
	// Exit is the single synthetic exit block: every return, every call to
	// panic, and the fall-through end of the body edge into it. It holds no
	// nodes.
	Exit *Block
	// Defers collects the function's defer statements in source order. Their
	// effects apply at Exit (in reverse order), not at the defer site.
	Defers []*ast.DeferStmt
}

// Block is one basic block: a maximal straight-line sequence of nodes with
// edges only at the end.
type Block struct {
	Index int
	// Nodes holds the statements — and bare condition/tag expressions of the
	// constructs that end the block — in execution order. A node is an
	// ast.Stmt or an ast.Expr (for if/for conditions, switch tags, range
	// operands), never a FuncLit body.
	Nodes []ast.Node
	Succs []*Block
	preds []*Block
}

// New builds the control-flow graph of body. Nested function literals are
// not descended into; build a separate Graph per literal body.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	b := &builder{g: g, labels: map[string]*labelBlocks{}}
	g.Entry = b.newBlock()
	g.Exit = b.newBlock()
	b.cur = g.Entry
	b.stmtList(body.List)
	b.edge(b.cur, g.Exit)
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			s.preds = append(s.preds, blk)
		}
	}
	return g
}

// labelBlocks are the resolution targets of one label: the labeled
// statement's own block (goto), and — once the labeled loop/switch is built —
// its break and continue targets.
type labelBlocks struct {
	start      *Block
	breakTo    *Block
	continueTo *Block
}

type builder struct {
	g   *Graph
	cur *Block
	// breakTo/continueTo are the innermost targets of an unlabeled
	// break/continue; loops and switches push and pop them.
	breakTo    *Block
	continueTo *Block
	labels     map[string]*labelBlocks
	// pendingLabel is set between a LabeledStmt and the loop/switch it
	// labels, so the construct can register its break/continue targets.
	pendingLabel *labelBlocks
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	if from == nil {
		return
	}
	from.Succs = append(from.Succs, to)
}

// startBlock seals cur with an edge to next and makes next current.
func (b *builder) startBlock(next *Block) {
	b.edge(b.cur, next)
	b.cur = next
}

func (b *builder) add(n ast.Node) {
	if b.cur != nil && n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

func (b *builder) label(name string) *labelBlocks {
	l, ok := b.labels[name]
	if !ok {
		l = &labelBlocks{}
		b.labels[name] = l
	}
	return l
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// isPanic reports whether s is a call to the panic builtin (matched
// syntactically: shadowing panic is not a shape this repository contains).
func isPanic(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

func (b *builder) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(st.List)

	case *ast.LabeledStmt:
		l := b.label(st.Label.Name)
		if l.start == nil { // a forward goto may have created it already
			l.start = b.newBlock()
		}
		b.startBlock(l.start)
		b.pendingLabel = l
		b.stmt(st.Stmt)
		b.pendingLabel = nil

	case *ast.ReturnStmt:
		b.add(st)
		b.edge(b.cur, b.g.Exit)
		b.cur = b.newBlock() // unreachable continuation

	case *ast.BranchStmt:
		b.branch(st)

	case *ast.DeferStmt:
		b.g.Defers = append(b.g.Defers, st)

	case *ast.IfStmt:
		if st.Init != nil {
			b.add(st.Init)
		}
		b.add(st.Cond)
		then, after := b.newBlock(), b.newBlock()
		b.edge(b.cur, then)
		if st.Else != nil {
			els := b.newBlock()
			b.edge(b.cur, els)
			b.cur = then
			b.stmt(st.Body)
			b.edge(b.cur, after)
			b.cur = els
			b.stmt(st.Else)
			b.startBlock(after)
		} else {
			b.edge(b.cur, after)
			b.cur = then
			b.stmt(st.Body)
			b.startBlock(after)
		}

	case *ast.ForStmt:
		if st.Init != nil {
			b.add(st.Init)
		}
		head, body, post, after := b.newBlock(), b.newBlock(), b.newBlock(), b.newBlock()
		b.startBlock(head)
		if st.Cond != nil {
			b.add(st.Cond)
			b.edge(head, after) // zero-iteration / loop-done exit
		}
		b.edge(head, body)
		b.loopBody(st.Body, body, after, post)
		b.edge(b.cur, post)
		b.cur = post
		if st.Post != nil {
			b.add(st.Post)
		}
		b.edge(post, head) // back edge
		b.cur = after

	case *ast.RangeStmt:
		b.add(st.X)
		head, body, after := b.newBlock(), b.newBlock(), b.newBlock()
		b.startBlock(head)
		// The per-iteration key/value bindings; the body is NOT part of
		// these nodes (it gets its own blocks below).
		b.add(st.Key)
		b.add(st.Value)
		b.edge(head, after)
		b.edge(head, body)
		b.loopBody(st.Body, body, after, head)
		b.edge(b.cur, head) // back edge
		b.cur = after

	case *ast.SwitchStmt:
		if st.Init != nil {
			b.add(st.Init)
		}
		if st.Tag != nil {
			b.add(st.Tag)
		}
		b.switchBody(st.Body, nil)

	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			b.add(st.Init)
		}
		b.add(st.Assign)
		b.switchBody(st.Body, nil)

	case *ast.SelectStmt:
		b.switchBody(st.Body, func(c ast.Stmt) ast.Stmt {
			if cc, ok := c.(*ast.CommClause); ok {
				return cc.Comm
			}
			return nil
		})

	default:
		if isPanic(s) {
			b.add(s)
			b.edge(b.cur, b.g.Exit)
			b.cur = b.newBlock()
			return
		}
		b.add(s)
	}
}

// loopBody builds a loop's body block with break/continue targets pushed,
// registering them on a pending label as well.
func (b *builder) loopBody(body *ast.BlockStmt, blk, breakTo, continueTo *Block) {
	if l := b.pendingLabel; l != nil {
		l.breakTo, l.continueTo = breakTo, continueTo
		b.pendingLabel = nil
	}
	savedB, savedC := b.breakTo, b.continueTo
	b.breakTo, b.continueTo = breakTo, continueTo
	b.cur = blk
	b.stmt(body)
	b.breakTo, b.continueTo = savedB, savedC
}

// switchBody lowers a switch/type-switch/select body: every clause begins a
// block reachable from the dispatch point; a missing default adds a direct
// edge to after. comm extracts a clause's communication statement (select).
func (b *builder) switchBody(body *ast.BlockStmt, comm func(ast.Stmt) ast.Stmt) {
	after := b.newBlock()
	if l := b.pendingLabel; l != nil {
		l.breakTo = after
		b.pendingLabel = nil
	}
	savedB := b.breakTo
	b.breakTo = after
	dispatch := b.cur

	hasDefault := false
	var clauseBlocks []*Block
	var clauses []ast.Stmt
	for _, c := range body.List {
		clauses = append(clauses, c)
		clauseBlocks = append(clauseBlocks, b.newBlock())
		switch cc := c.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
			// Case expressions are evaluated at the dispatch point.
			for _, e := range cc.List {
				if dispatch != nil {
					dispatch.Nodes = append(dispatch.Nodes, e)
				}
			}
		case *ast.CommClause:
			if cc.Comm == nil {
				hasDefault = true
			}
		}
	}
	for i, c := range clauses {
		blk := clauseBlocks[i]
		b.edge(dispatch, blk)
		b.cur = blk
		var list []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			list = cc.Body
		case *ast.CommClause:
			if comm != nil {
				if cs := comm(c); cs != nil {
					b.stmt(cs)
				}
			}
			list = cc.Body
		}
		// fallthrough (always the last statement) edges into the next
		// clause's block instead of after.
		ft := false
		if n := len(list); n > 0 {
			if br, ok := list[n-1].(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" {
				ft = true
				list = list[:n-1]
			}
		}
		b.stmtList(list)
		if ft && i+1 < len(clauseBlocks) {
			b.edge(b.cur, clauseBlocks[i+1])
			b.cur = nil
		} else {
			b.edge(b.cur, after)
		}
	}
	if !hasDefault {
		b.edge(dispatch, after)
	}
	b.breakTo = savedB
	b.cur = after
}

func (b *builder) branch(st *ast.BranchStmt) {
	var target *Block
	switch st.Tok.String() {
	case "break":
		target = b.breakTo
		if st.Label != nil {
			target = b.label(st.Label.Name).breakTo
		}
	case "continue":
		target = b.continueTo
		if st.Label != nil {
			target = b.label(st.Label.Name).continueTo
		}
	case "goto":
		if st.Label != nil {
			l := b.label(st.Label.Name)
			if l.start == nil {
				// Forward goto: create the target now; the LabeledStmt will
				// adopt it.
				l.start = b.newBlock()
			}
			target = l.start
		}
	case "fallthrough":
		// Handled structurally in switchBody; a stray one (syntactically
		// impossible elsewhere) falls through.
		return
	}
	if target != nil {
		b.edge(b.cur, target)
	}
	b.cur = b.newBlock() // unreachable continuation
}
