package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// parseBody parses src as the body of function f in a file and returns it.
func parseBody(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	file, err := parser.ParseFile(token.NewFileSet(), "x.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			return fd.Body
		}
	}
	t.Fatal("no func f")
	return nil
}

// calls is the test lattice: the set of single-letter functions called,
// encoded as a sorted set.
type calls map[string]bool

func (c calls) clone() calls {
	out := make(calls, len(c))
	for k := range c {
		out[k] = true
	}
	return out
}

func (c calls) String() string {
	keys := make([]string, 0, len(c))
	for k := range c {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, "")
}

// exitState runs a gen-only analysis (which calls execute) with the given
// join over the CFG of body and returns the state joined into Exit.
func exitState(t *testing.T, body *ast.BlockStmt, join func(a, b calls) calls) string {
	t.Helper()
	g := New(body)
	in := g.Fixpoint(Flow{
		Entry: calls{},
		Transfer: func(b *Block, s State) State {
			st := s.(calls).clone()
			for _, n := range b.Nodes {
				ast.Inspect(n, func(m ast.Node) bool {
					if _, ok := m.(*ast.FuncLit); ok {
						return false
					}
					if call, ok := m.(*ast.CallExpr); ok {
						if id, ok := call.Fun.(*ast.Ident); ok && len(id.Name) == 1 {
							st[id.Name] = true
						}
					}
					return true
				})
			}
			return st
		},
		Join:  func(a, b State) State { return join(a.(calls), b.(calls)) },
		Equal: func(a, b State) bool { return reflect.DeepEqual(a, b) },
	})
	s, ok := in[g.Exit]
	if !ok {
		t.Fatal("exit unreachable")
	}
	return s.(calls).String()
}

func union(a, b calls) calls {
	out := a.clone()
	for k := range b {
		out[k] = true
	}
	return out
}

func intersect(a, b calls) calls {
	out := calls{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

func TestFixpointJoins(t *testing.T) {
	tests := []struct {
		name      string
		src       string
		wantMust  string // intersection join: calls on every path to exit
		wantMay   string // union join: calls on some path to exit
		wantDefer int
	}{
		{
			name:     "if-else",
			src:      `func f(c bool) { A(); if c { B() } else { C() }; D() }`,
			wantMust: "AD",
			wantMay:  "ABCD",
		},
		{
			name:     "if-no-else",
			src:      `func f(c bool) { A(); if c { B() }; D() }`,
			wantMust: "AD",
			wantMay:  "ABD",
		},
		{
			name: "loop-break-vs-return",
			src: `func f(c bool, n int) {
				A()
				for i := 0; i < n; i++ {
					if c { break }
					B()
					return
				}
				C()
			}`,
			// Exit paths: the in-loop return (A,B) and the fall-through after
			// break or zero iterations (A,C).
			wantMust: "A",
			wantMay:  "ABC",
		},
		{
			name: "zero-iteration-loop",
			src: `func f(n int) {
				A()
				for i := 0; i < n; i++ { B() }
				C()
			}`,
			wantMust: "AC",
			wantMay:  "ABC",
		},
		{
			name: "range-continue",
			src: `func f(xs []int, c bool) {
				for range xs {
					if c { continue }
					A()
				}
				B()
			}`,
			wantMust: "B",
			wantMay:  "AB",
		},
		{
			name:     "goto-skips",
			src:      `func f() { goto L; B(); L: C() }`,
			wantMust: "C",
			wantMay:  "C", // B is unreachable
		},
		{
			name: "switch-fallthrough",
			src: `func f(x int) {
				switch x {
				case 1:
					A()
					fallthrough
				case 2:
					B()
				default:
					C()
				}
			}`,
			wantMust: "",
			wantMay:  "ABC",
		},
		{
			name:     "switch-no-default",
			src:      `func f(x int) { A(); switch x { case 1: B() }; C() }`,
			wantMust: "AC",
			wantMay:  "ABC",
		},
		{
			name: "panic-terminates",
			src: `func f(c bool) {
				if c {
					panic("x")
				}
				A()
			}`,
			// The panic path reaches Exit without A; must-join drops it.
			wantMust: "",
			wantMay:  "A",
		},
		{
			name:      "defer-collected-not-inline",
			src:       `func f() { defer A(); B() }`,
			wantMust:  "B",
			wantMay:   "B",
			wantDefer: 1,
		},
		{
			name: "select-default",
			src: `func f(ch chan int) {
				select {
				case v := <-ch:
					_ = v
					A()
				default:
					B()
				}
				C()
			}`,
			wantMust: "C",
			wantMay:  "ABC",
		},
		{
			name: "labeled-break",
			src: `func f(c bool) {
			L:
				for {
					for {
						if c { break L }
						A()
					}
				}
				B()
			}`,
			wantMust: "B",
			wantMay:  "AB",
		},
		{
			name:     "funclit-not-descended",
			src:      `func f() { fn := func() { A() }; fn(); B() }`,
			wantMust: "B",
			wantMay:  "B",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			body := parseBody(t, tt.src)
			if got := exitState(t, body, intersect); got != tt.wantMust {
				t.Errorf("must (intersection) exit state = %q, want %q", got, tt.wantMust)
			}
			if got := exitState(t, body, union); got != tt.wantMay {
				t.Errorf("may (union) exit state = %q, want %q", got, tt.wantMay)
			}
			if n := len(New(body).Defers); n != tt.wantDefer {
				t.Errorf("defers = %d, want %d", n, tt.wantDefer)
			}
		})
	}
}
