// Package load turns package patterns into parsed, type-checked packages
// for the divtopk-vet driver without importing golang.org/x/tools/go/packages
// (unavailable offline). It shells out to `go list -deps -export -json`,
// which compiles dependencies to export data, and type-checks only the
// target packages' sources against that export data — the same division of
// labor the real driver stack uses.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"

	"divtopk/tools/vet/analysis"
)

// Package is one type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
}

// Packages loads the packages matching patterns, resolved in dir.
func Packages(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exportFile := make(map[string]string)
	var targets []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Export != "" {
			exportFile[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			cp := p
			targets = append(targets, &cp)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exportFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			fn := filepath.Join(t.Dir, name)
			f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %v", fn, err)
			}
			files = append(files, f)
		}
		info := analysis.NewInfo()
		conf := types.Config{
			Importer: imp,
			Sizes:    types.SizesFor("gc", runtime.GOARCH),
		}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: t.ImportPath,
			Dir:        t.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		})
	}
	return pkgs, nil
}
