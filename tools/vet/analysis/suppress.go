package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// Suppression is one parsed //lint:allow comment. The syntax is
//
//	//lint:allow <analyzer> <justification>
//
// placed on the flagged line or on the line immediately above it. The
// justification is mandatory: suppressions exist to record a reviewed
// decision, not to mute the tool.
type Suppression struct {
	Pos      token.Pos
	Line     int // line the comment sits on
	Analyzer string
	Reason   string
}

var allowRE = regexp.MustCompile(`^//lint:allow(?:\s+(\S+))?\s*(.*)$`)

// Suppressions parses every //lint:allow comment in files. Malformed
// suppressions (no analyzer name or no justification) are returned as
// diagnostics so the gate fails on them instead of silently honoring or
// ignoring them.
func Suppressions(fset *token.FileSet, files []*ast.File) ([]Suppression, []Diagnostic) {
	var sups []Suppression
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//lint:allow") {
					continue
				}
				m := allowRE.FindStringSubmatch(c.Text)
				if m == nil || m[1] == "" {
					bad = append(bad, Diagnostic{Pos: c.Pos(),
						Message: "malformed suppression: want //lint:allow <analyzer> <justification>"})
					continue
				}
				if strings.TrimSpace(m[2]) == "" {
					bad = append(bad, Diagnostic{Pos: c.Pos(),
						Message: "suppression of " + m[1] + " has no justification (reviewed reason is mandatory)"})
					continue
				}
				sups = append(sups, Suppression{
					Pos:      c.Pos(),
					Line:     fset.Position(c.Pos()).Line,
					Analyzer: m[1],
					Reason:   strings.TrimSpace(m[2]),
				})
			}
		}
	}
	return sups, bad
}

// FilterSuppressed drops diagnostics of analyzer name that are covered by a
// suppression in the same file on the same line or the line above.
func FilterSuppressed(fset *token.FileSet, sups []Suppression, name string, diags []Diagnostic) []Diagnostic {
	if len(sups) == 0 {
		return diags
	}
	type key struct {
		file string
		line int
	}
	covered := make(map[key]bool)
	for _, s := range sups {
		if s.Analyzer != name {
			continue
		}
		p := fset.Position(s.Pos)
		covered[key{p.Filename, s.Line}] = true
		covered[key{p.Filename, s.Line + 1}] = true
	}
	var kept []Diagnostic
	for _, d := range diags {
		p := fset.Position(d.Pos)
		if covered[key{p.Filename, p.Line}] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
