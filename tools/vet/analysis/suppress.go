package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// Suppression is one parsed //lint:allow comment. The syntax is
//
//	//lint:allow <analyzer> <justification>
//
// placed on the flagged line or on the line immediately above it. The
// justification is mandatory: suppressions exist to record a reviewed
// decision, not to mute the tool.
type Suppression struct {
	Pos      token.Pos
	Line     int // line the comment sits on
	Analyzer string
	Reason   string
	// Used records whether this suppression dropped at least one diagnostic
	// in the run; FilterSuppressed sets it. A suppression that is never used
	// is stale — the code it excused no longer triggers the analyzer — and
	// Stale turns it into a finding so suppressions cannot outlive their
	// reason.
	Used bool
}

var allowRE = regexp.MustCompile(`^//lint:allow(?:\s+(\S+))?\s*(.*)$`)

// Suppressions parses every //lint:allow comment in files. Malformed
// suppressions (no analyzer name or no justification) are returned as
// diagnostics so the gate fails on them instead of silently honoring or
// ignoring them.
func Suppressions(fset *token.FileSet, files []*ast.File) ([]*Suppression, []Diagnostic) {
	var sups []*Suppression
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//lint:allow") {
					continue
				}
				m := allowRE.FindStringSubmatch(c.Text)
				if m == nil || m[1] == "" {
					bad = append(bad, Diagnostic{Pos: c.Pos(),
						Message: "malformed suppression: want //lint:allow <analyzer> <justification>"})
					continue
				}
				if strings.TrimSpace(m[2]) == "" {
					bad = append(bad, Diagnostic{Pos: c.Pos(),
						Message: "suppression of " + m[1] + " has no justification (reviewed reason is mandatory)"})
					continue
				}
				sups = append(sups, &Suppression{
					Pos:      c.Pos(),
					Line:     fset.Position(c.Pos()).Line,
					Analyzer: m[1],
					Reason:   strings.TrimSpace(m[2]),
				})
			}
		}
	}
	return sups, bad
}

// FilterSuppressed drops diagnostics of analyzer name that are covered by a
// suppression in the same file on the same line or the line above, marking
// every suppression that dropped at least one diagnostic as Used.
func FilterSuppressed(fset *token.FileSet, sups []*Suppression, name string, diags []Diagnostic) []Diagnostic {
	if len(sups) == 0 {
		return diags
	}
	type key struct {
		file string
		line int
	}
	covered := make(map[key]*Suppression)
	for _, s := range sups {
		if s.Analyzer != name {
			continue
		}
		p := fset.Position(s.Pos)
		covered[key{p.Filename, s.Line}] = s
		covered[key{p.Filename, s.Line + 1}] = s
	}
	var kept []Diagnostic
	for _, d := range diags {
		p := fset.Position(d.Pos)
		if s := covered[key{p.Filename, p.Line}]; s != nil {
			s.Used = true
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

// Stale returns one diagnostic per suppression that no analyzer used during
// the run — the pseudo-analyzer lintstale. A suppression whose finding has
// been fixed (or whose analyzer got precise enough to stop flagging the
// line) must be deleted with the code change that obsoleted it, or it will
// silently excuse the next, unrelated finding on that line.
func Stale(sups []*Suppression) []Diagnostic {
	var out []Diagnostic
	for _, s := range sups {
		if s.Used {
			continue
		}
		out = append(out, Diagnostic{Pos: s.Pos,
			Message: fmt.Sprintf("stale suppression: //lint:allow %s no longer suppresses any finding — delete it (reason was: %s)",
				s.Analyzer, s.Reason)})
	}
	return out
}
