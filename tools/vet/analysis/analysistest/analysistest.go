// Package analysistest runs an analyzer over GOPATH-style testdata packages
// and checks its diagnostics against // want comments, mirroring the
// golang.org/x/tools/go/analysis/analysistest contract:
//
//	s = append(s, k) // want `appended in map-range order`
//
// Each quoted string is a regexp that must match exactly one diagnostic
// reported on that line; diagnostics not claimed by any want, and wants not
// matched by any diagnostic, fail the test. //lint:allow suppressions are
// honored, so testdata can pin the suppression syntax itself.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"testing"

	"divtopk/tools/vet/analysis"
	"divtopk/tools/vet/analysis/facts"
)

// TestData returns the abs path of the calling test's testdata directory.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// loaded is one parsed+checked testdata package.
type loaded struct {
	path  string
	files []*ast.File
	types *types.Package
	info  *types.Info
}

// loader resolves testdata-local imports from testdata/src and everything
// else (stdlib) through the source importer, which works offline.
type loader struct {
	srcdir string
	fset   *token.FileSet
	std    types.ImporterFrom
	pkgs   map[string]*loaded
	// order lists the loaded testdata packages in completion order —
	// dependencies before their importers — which is the order the analyzer
	// must visit them for facts to flow forward.
	order []*loaded
	infos []*types.Info
}

func (l *loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

func (l *loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p.types, nil
	}
	if _, err := os.Stat(filepath.Join(l.srcdir, path)); err == nil {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

func (l *loader) load(path string) (*loaded, error) {
	dir := filepath.Join(l.srcdir, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := analysis.NewInfo()
	conf := types.Config{Importer: l, Sizes: types.SizesFor("gc", runtime.GOARCH)}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking testdata package %s: %v", path, err)
	}
	p := &loaded{path: path, files: files, types: tpkg, info: info}
	l.pkgs[path] = p
	l.order = append(l.order, p)
	l.infos = append(l.infos, info)
	return p, nil
}

// Run applies a to each named testdata package under dir/src and verifies
// the diagnostics against the // want comments of that package's files.
//
// Facts flow the way they do in the real drivers: every testdata package a
// named package (transitively) imports is analyzed first, facts-only — its
// diagnostics are discarded and its files carry no want expectations — so a
// fact produced in testdata package "g" is visible while analyzing a named
// package that imports "g".
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	analysis.RegisterFactTypes([]*analysis.Analyzer{a})
	l := &loader{
		srcdir: filepath.Join(dir, "src"),
		fset:   token.NewFileSet(),
		pkgs:   make(map[string]*loaded),
	}
	l.std = importer.ForCompiler(l.fset, "source", nil).(types.ImporterFrom)
	factSet := facts.NewSet()
	analyzed := make(map[*loaded]bool)

	// analyze runs a over p into factSet, returning the diagnostics.
	analyze := func(p *loaded) []analysis.Diagnostic {
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      l.fset,
			Files:     p.files,
			Pkg:       p.types,
			PkgPath:   p.path,
			TypesInfo: p.info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
			FactSet:   factSet,
		}
		if _, err := a.Run(pass); err != nil {
			t.Fatalf("%s: analyzer failed on %s: %v", a.Name, p.path, err)
		}
		analyzed[p] = true
		return diags
	}

	for _, path := range pkgpaths {
		p, err := l.load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		// Dependencies first (l.order is completion order), facts only.
		for _, dep := range l.order {
			if dep != p && !analyzed[dep] {
				analyze(dep)
			}
		}
		diags := analyze(p)
		sups, bad := analysis.Suppressions(l.fset, p.files)
		diags = append(analysis.FilterSuppressed(l.fset, sups, a.Name, diags), bad...)
		check(t, l.fset, a.Name, p.files, diags)
	}
}

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

var wantStrRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// check compares diagnostics against // want comments.
func check(t *testing.T, fset *token.FileSet, name string, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, "// want ")
				if i < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantStrRE.FindAllStringSubmatch(text[i+len("// want "):], -1) {
					raw := m[1]
					if raw == "" {
						raw = m[2]
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, raw, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}

	var unexpected []string
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		claimed := false
		for _, w := range wants {
			if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				claimed = true
				break
			}
		}
		if !claimed {
			unexpected = append(unexpected, fmt.Sprintf("%s: [%s] %s", pos, name, d.Message))
		}
	}
	sort.Strings(unexpected)
	for _, u := range unexpected {
		t.Errorf("unexpected diagnostic:\n  %s", u)
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}
