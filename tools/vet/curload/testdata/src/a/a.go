// Package a minimizes the Matcher session shape: an atomic.Pointer field
// named cur holding the current graph snapshot, swapped by updates.
package a

import "sync/atomic"

type Graph struct{ version uint64 }

func (g *Graph) Version() uint64 { return g.version }

type Matcher struct {
	cur atomic.Pointer[Graph]
}

// Version is the canonical single-load accessor: the Version() call runs on
// the loaded snapshot, not on the session, so nothing can tear.
func (m *Matcher) Version() uint64 { return m.cur.Load().Version() }

// good binds the snapshot once and derives everything from it.
func good(m *Matcher) (uint64, *Graph) {
	g := m.cur.Load()
	return g.Version(), g
}

// bad loads twice: an Update between the loads hands back two different
// snapshots.
func bad(m *Matcher) (uint64, *Graph) {
	v := m.cur.Load().Version()
	return v, m.cur.Load() // want `second cur\.Load\(\)`
}

// mixed pairs a bound snapshot with a version read that reloads internally.
func mixed(m *Matcher) (*Graph, uint64) {
	g := m.cur.Load()
	return g, m.Version() // want `mixes cur\.Load\(\) with Version\(\)`
}

// twoMatchers loads from two distinct sessions — one load each, no tearing
// within either session. Must not be flagged (false-positive guard).
func twoMatchers(a, b *Matcher) (uint64, uint64) {
	ga := a.cur.Load()
	gb := b.cur.Load()
	return ga.Version(), gb.Version()
}

// suppressed documents a reviewed double load (e.g. a stats probe that
// tolerates tearing).
func suppressed(m *Matcher) (uint64, uint64) {
	v1 := m.cur.Load().Version()
	//lint:allow curload monotonic probe, tearing acceptable for diagnostics
	v2 := m.cur.Load().Version()
	return v1, v2
}
