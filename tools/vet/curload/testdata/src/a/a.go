// Package a minimizes the Matcher session shape: an atomic.Pointer field
// named cur holding the current graph snapshot, swapped by updates.
package a

import "sync/atomic"

type Graph struct{ version uint64 }

func (g *Graph) Version() uint64 { return g.version }

type Matcher struct {
	cur atomic.Pointer[Graph]
}

// Version is the canonical single-load accessor: the Version() call runs on
// the loaded snapshot, not on the session, so nothing can tear.
func (m *Matcher) Version() uint64 { return m.cur.Load().Version() }

// good binds the snapshot once and derives everything from it.
func good(m *Matcher) (uint64, *Graph) {
	g := m.cur.Load()
	return g.Version(), g
}

// bad loads twice: an Update between the loads hands back two different
// snapshots.
func bad(m *Matcher) (uint64, *Graph) {
	v := m.cur.Load().Version()
	return v, m.cur.Load() // want `second cur\.Load\(\)`
}

// mixed pairs a bound snapshot with a version read that reloads internally.
func mixed(m *Matcher) (*Graph, uint64) {
	g := m.cur.Load()
	return g, m.Version() // want `mixes cur\.Load\(\) with Version\(\)`
}

// twoMatchers loads from two distinct sessions — one load each, no tearing
// within either session. Must not be flagged (false-positive guard).
func twoMatchers(a, b *Matcher) (uint64, uint64) {
	ga := a.cur.Load()
	gb := b.cur.Load()
	return ga.Version(), gb.Version()
}

// suppressed documents a reviewed double load (e.g. a stats probe that
// tolerates tearing).
func suppressed(m *Matcher) (uint64, uint64) {
	v1 := m.cur.Load().Version()
	//lint:allow curload monotonic probe, tearing acceptable for diagnostics
	v2 := m.cur.Load().Version()
	return v1, v2
}

// --- cases the syntactic (pre-CFG) counter could not decide ---

// goodBranches loads once per path: two textual loads, but no execution
// path performs both. The old occurrence count false-positived here.
func goodBranches(m *Matcher, fast bool) uint64 {
	if fast {
		return m.cur.Load().Version()
	}
	return m.cur.Load().Version()
}

// badLoopLoad re-loads every iteration through the back edge: results for
// different patterns can come from different snapshots, though the source
// contains a single textual Load.
func badLoopLoad(m *Matcher, pats []string) uint64 {
	var v uint64
	for range pats {
		v += m.cur.Load().Version() // want `second cur\.Load\(\)`
	}
	return v
}

// goodSessionsLoop loads once per session: the range variable rebinds each
// iteration, so the back edge must not carry the count into the next one.
func goodSessionsLoop(ms []*Matcher) uint64 {
	var v uint64
	for _, m := range ms {
		g := m.cur.Load()
		v += g.Version()
	}
	return v
}

func lookup(name string) *Matcher { return nil }

// goodLookupLoop binds a fresh session each iteration through an ordinary
// assignment (not a range binding); rebinding must reset the count.
func goodLookupLoop(names []string) uint64 {
	var v uint64
	for _, n := range names {
		m := lookup(n)
		v += m.cur.Load().Version()
	}
	return v
}

// --- loads hidden behind accessors (LoadsCur facts) ---

// snapshot is a zero-arg accessor that loads internally; callers that have
// already bound the snapshot must not call it.
func (m *Matcher) snapshot() *Graph { return m.cur.Load() }

// badHelperLoad binds the snapshot, then re-loads through the accessor.
func badHelperLoad(m *Matcher) (uint64, *Graph) {
	g := m.cur.Load()
	return g.Version(), m.snapshot() // want `call to snapshot in badHelperLoad re-loads`
}

// goodHelperOnly derives everything from a single accessor call.
func goodHelperOnly(m *Matcher) uint64 {
	return m.snapshot().version
}

// topK re-loads per pattern by design; it takes an argument, so the
// accessor fact must not be consumed at its call sites.
func (m *Matcher) topK(p string) int {
	g := m.cur.Load()
	_ = g
	return len(p)
}

// goodPerPattern is the batch entry point: each per-pattern call binds its
// own snapshot inside the helper. Must not be flagged.
func goodPerPattern(m *Matcher, pats []string) int {
	n := 0
	for _, p := range pats {
		n += m.topK(p)
	}
	return n
}
