// Package curload flags functions that load a session's atomic snapshot
// pointer more than once on one execution path, or that mix a direct load
// with a Version() call on the same session.
//
// Invariant (PR 4/PR 5, Matcher.cur): the current graph snapshot lives in an
// atomic.Pointer named cur, swapped wholesale by Update. Any function that
// calls m.cur.Load() twice — or calls m.cur.Load() and m.Version() — can
// observe two different snapshots across a concurrent Update: a torn
// snapshot/version pair, which is exactly how a result computed on one graph
// gets cached or reported under another graph's version. Bind the snapshot
// once (g := m.cur.Load()) and derive everything, including the version,
// from g.
//
// The analysis runs over the cfg package's control-flow graph with a
// per-session load-count lattice (counts clamp at 2, so loops converge) and
// a max join: a reload is flagged exactly when some execution path performs
// it. Branch-exclusive loads — one load in the if arm, one in the else —
// are therefore clean (no single path loads twice, where the earlier
// syntactic count false-positived), while a single textual load inside a
// loop is caught through the back edge (every iteration after the first
// re-loads — the torn pair the syntactic count could not see).
//
// Zero-argument accessor methods that load their receiver's snapshot
// internally (func (m *Matcher) Version() { return m.cur.Load()... })
// carry the LoadsCur object fact; calling one after binding the snapshot is
// a helper-indirected reload and is flagged at the call site. Calls with
// arguments never consume the fact: a per-item helper (m.topK(pattern) in a
// batch loop) legitimately re-loads per item, and counting it would flag
// every batch entry point.
package curload

import (
	"go/ast"
	"go/types"
	"maps"

	"divtopk/tools/vet/analysis"
	"divtopk/tools/vet/analysis/cfg"
	"divtopk/tools/vet/analysis/facts"
	"divtopk/tools/vet/internal/typeutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "curload",
	Doc: "flag repeated cur.Load() or mixed cur.Load()/Version() on one " +
		"path of a function (torn snapshot/version pairs)",
	Run:       run,
	FactTypes: []facts.Fact{new(LoadsCur)},
}

// LoadsCur is the object fact for zero-parameter accessor methods whose
// body loads the receiver's cur snapshot pointer: calling one is a load.
type LoadsCur struct {
	// Loads is the number of snapshot loads one call performs on some path
	// (clamped at 2).
	Loads int `json:"loads"`
}

// AFact marks LoadsCur as a serializable analyzer fact.
func (*LoadsCur) AFact() {}

// maxCount clamps the lattice: 0, 1, "2 or more". Clamping bounds the
// chain height so loop back edges converge.
const maxCount = 2

// baseKey identifies the session value a call chain is rooted at: by object
// when the root is a plain identifier chain, by source text otherwise.
type baseKey struct {
	obj types.Object
	str string
}

// counts is the per-session path state.
type counts struct {
	loads    int // snapshot loads executed on this path
	versions int // Version() calls executed on this path
}

// lState maps each session base to its path counts.
type lState = map[baseKey]counts

func joinState(a, b lState) lState {
	out := maps.Clone(a)
	for k, bc := range b {
		ac := out[k]
		out[k] = counts{loads: max(ac.loads, bc.loads), versions: max(ac.versions, bc.versions)}
	}
	return out
}

func run(pass *analysis.Pass) (any, error) {
	c := &checker{pass: pass}
	var decls []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				decls = append(decls, fd)
			}
		}
	}
	// Phase 1: LoadsCur facts for zero-parameter accessors, iterated so
	// accessor chains converge regardless of declaration order.
	for round := 0; round <= len(decls); round++ {
		changed := false
		for _, fd := range decls {
			if c.exportLoads(fd) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Phase 2: report. Func literals are separate sessions-of-execution
	// (goroutines, callbacks) and get their own graphs and empty state.
	for _, fd := range decls {
		c.check(fd, fd.Body)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				c.check(fd, lit.Body)
			}
			return true
		})
	}
	return nil, nil
}

type checker struct {
	pass *analysis.Pass
}

// hooks observe one replay of a block's nodes; any callback may be nil.
type hooks struct {
	// reload fires on a direct load while the path already loaded.
	reload func(call *ast.CallExpr)
	// mixed fires on a Version()/load pairing on one path, at the later call.
	mixed func(call *ast.CallExpr)
	// helper fires on an accessor-fact call that re-loads a bound snapshot.
	helper func(call *ast.CallExpr, name string)
}

func (c *checker) keyOf(e ast.Expr) baseKey {
	if obj := typeutil.ObjOf(c.pass.TypesInfo, e); obj != nil {
		return baseKey{obj: obj}
	}
	return baseKey{str: types.ExprString(e)}
}

// loadCall matches call as <base>.cur.Load() on an atomic.Pointer field,
// returning the session base key.
func (c *checker) loadCall(call *ast.CallExpr) (baseKey, bool) {
	if len(call.Args) != 0 {
		return baseKey{}, false
	}
	fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || fun.Sel.Name != "Load" {
		return baseKey{}, false
	}
	field, ok := ast.Unparen(fun.X).(*ast.SelectorExpr)
	if !ok || field.Sel.Name != "cur" {
		return baseKey{}, false
	}
	tv, ok := c.pass.TypesInfo.Types[field]
	if !ok || !typeutil.IsNamed(tv.Type, "atomic", "Pointer") {
		return baseKey{}, false
	}
	return c.keyOf(field.X), true
}

// accessorLoads matches call as a zero-argument method call carrying the
// LoadsCur fact, returning the receiver base and the load count.
func (c *checker) accessorLoads(call *ast.CallExpr) (baseKey, string, int, bool) {
	if len(call.Args) != 0 {
		return baseKey{}, "", 0, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return baseKey{}, "", 0, false
	}
	fn, ok := c.pass.TypesInfo.ObjectOf(sel.Sel).(*types.Func)
	if !ok {
		return baseKey{}, "", 0, false
	}
	var f LoadsCur
	if !c.pass.ImportObjectFact(fn, &f) || f.Loads == 0 {
		return baseKey{}, "", 0, false
	}
	return c.keyOf(sel.X), sel.Sel.Name, f.Loads, true
}

// step applies one block node to st in place, firing h's callbacks.
func (c *checker) step(n ast.Node, st lState, h hooks) {
	// A bare identifier node is a range-header binding (cfg emits Key and
	// Value as their own nodes): the variable is rebound every iteration,
	// so a `for _, m := range sessions` loop loads each session once — the
	// back edge must not carry m's count into the next iteration.
	if id, ok := n.(*ast.Ident); ok {
		if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
			delete(st, baseKey{obj: obj})
			return
		}
	}
	// An assignment rebinds its simple-identifier destinations: counts
	// belong to the old value (a session looked up inside a loop body is a
	// different session each iteration). RHS effects are counted first —
	// they run against the old bindings.
	if as, ok := n.(*ast.AssignStmt); ok {
		for _, r := range as.Rhs {
			c.inspect(r, st, h)
		}
		for _, l := range as.Lhs {
			if id, ok := ast.Unparen(l).(*ast.Ident); ok && id.Name != "_" {
				if obj := c.pass.TypesInfo.ObjectOf(id); obj != nil {
					delete(st, baseKey{obj: obj})
				}
			}
		}
		return
	}
	c.inspect(n, st, h)
}

// inspect applies every call effect inside n to st.
func (c *checker) inspect(n ast.Node, st lState, h hooks) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch v := x.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			if base, ok := c.loadCall(v); ok {
				cs := st[base]
				if cs.loads >= 1 && h.reload != nil {
					h.reload(v)
				} else if cs.versions >= 1 && h.mixed != nil {
					h.mixed(v)
				}
				cs.loads = min(cs.loads+1, maxCount)
				st[base] = cs
				return true
			}
			if sel, ok := ast.Unparen(v.Fun).(*ast.SelectorExpr); ok &&
				sel.Sel.Name == "Version" && len(v.Args) == 0 {
				base := c.keyOf(sel.X)
				cs := st[base]
				if cs.loads >= 1 && h.mixed != nil {
					h.mixed(v)
				}
				cs.versions = min(cs.versions+1, maxCount)
				st[base] = cs
				return true
			}
			if base, name, n, ok := c.accessorLoads(v); ok {
				cs := st[base]
				if cs.loads >= 1 && h.helper != nil {
					h.helper(v, name)
				}
				cs.loads = min(cs.loads+n, maxCount)
				st[base] = cs
			}
		}
		return true
	})
}

func (c *checker) flow() cfg.Flow {
	return cfg.Flow{
		Entry: lState{},
		Transfer: func(b *cfg.Block, in cfg.State) cfg.State {
			st := maps.Clone(in.(lState))
			if st == nil {
				st = lState{}
			}
			for _, n := range b.Nodes {
				c.step(n, st, hooks{})
			}
			return st
		},
		Join:  func(a, b cfg.State) cfg.State { return joinState(a.(lState), b.(lState)) },
		Equal: func(a, b cfg.State) bool { return maps.Equal(a.(lState), b.(lState)) },
	}
}

// sweep replays every reachable block over its fixpoint in-state.
func (c *checker) sweep(g *cfg.Graph, in map[*cfg.Block]cfg.State, h hooks) {
	for _, b := range g.Blocks {
		stIn, ok := in[b]
		if !ok {
			continue
		}
		st := maps.Clone(stIn.(lState))
		for _, n := range b.Nodes {
			c.step(n, st, h)
		}
	}
}

// check reports torn-pair shapes in body; fd names the enclosing
// declaration.
func (c *checker) check(fd *ast.FuncDecl, body *ast.BlockStmt) {
	g := cfg.New(body)
	in := g.Fixpoint(c.flow())
	fn := typeutil.FuncFor(fd)
	c.sweep(g, in, hooks{
		reload: func(call *ast.CallExpr) {
			c.pass.Reportf(call.Pos(),
				"second cur.Load() in %s: bind the snapshot once — a reload may observe a "+
					"different snapshot across a concurrent Update (torn snapshot/version pair)",
				fn)
		},
		mixed: func(call *ast.CallExpr) {
			c.pass.Reportf(call.Pos(),
				"%s mixes cur.Load() with Version() on the same session: Version() reloads the "+
					"pointer and can disagree with the bound snapshot; use the loaded snapshot's Version",
				fn)
		},
		helper: func(call *ast.CallExpr, name string) {
			c.pass.Reportf(call.Pos(),
				"call to %s in %s re-loads the session snapshot already bound in this function: "+
					"derive from the bound snapshot instead (a helper-indirected reload tears the "+
					"snapshot/version pair)",
				name, fn)
		},
	})
}

// exportLoads computes fd's LoadsCur fact (zero-parameter methods only),
// reporting whether it changed.
func (c *checker) exportLoads(fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return false
	}
	if fd.Type.Params != nil && fd.Type.Params.NumFields() > 0 {
		return false
	}
	recvObj := c.pass.TypesInfo.ObjectOf(fd.Recv.List[0].Names[0])
	obj, ok := c.pass.TypesInfo.ObjectOf(fd.Name).(*types.Func)
	if !ok || recvObj == nil {
		return false
	}
	g := cfg.New(fd.Body)
	in := g.Fixpoint(c.flow())
	n := 0
	if st, ok := in[g.Exit]; ok {
		n = st.(lState)[baseKey{obj: recvObj}].loads
	}
	if n == 0 {
		return false
	}
	eff := LoadsCur{Loads: n}
	var old LoadsCur
	if c.pass.ImportObjectFact(obj, &old) && old == eff {
		return false
	}
	c.pass.ExportObjectFact(obj, &eff)
	return true
}
