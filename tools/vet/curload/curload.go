// Package curload flags functions that load a session's atomic snapshot
// pointer more than once, or that mix a direct load with a Version() call on
// the same session.
//
// Invariant (PR 4/PR 5, Matcher.cur): the current graph snapshot lives in an
// atomic.Pointer named cur, swapped wholesale by Update. Any function that
// calls m.cur.Load() twice — or calls m.cur.Load() and m.Version() — can
// observe two different snapshots across a concurrent Update: a torn
// snapshot/version pair, which is exactly how a result computed on one graph
// gets cached or reported under another graph's version. Bind the snapshot
// once (g := m.cur.Load()) and derive everything, including the version,
// from g.
package curload

import (
	"go/ast"
	"go/token"
	"go/types"

	"divtopk/tools/vet/analysis"
	"divtopk/tools/vet/internal/typeutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "curload",
	Doc: "flag repeated cur.Load() or mixed cur.Load()/Version() in one " +
		"function (torn snapshot/version pairs)",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

// baseKey identifies the session value a call chain is rooted at: by object
// when the root is a plain identifier chain, by source text otherwise.
type baseKey struct {
	obj types.Object
	str string
}

func keyOf(pass *analysis.Pass, e ast.Expr) baseKey {
	if obj := typeutil.ObjOf(pass.TypesInfo, e); obj != nil {
		return baseKey{obj: obj}
	}
	return baseKey{str: types.ExprString(e)}
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	type usage struct {
		loads    []token.Pos
		versions []token.Pos
	}
	uses := make(map[baseKey]*usage)
	var order []baseKey
	get := func(k baseKey) *usage {
		u, ok := uses[k]
		if !ok {
			u = &usage{}
			uses[k] = u
			order = append(order, k)
		}
		return u
	}

	// First pass: find every <base>.cur.Load() where cur is an
	// atomic.Pointer field, keyed by base.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 0 {
			return true
		}
		fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || fun.Sel.Name != "Load" {
			return true
		}
		field, ok := ast.Unparen(fun.X).(*ast.SelectorExpr)
		if !ok || field.Sel.Name != "cur" {
			return true
		}
		tv, ok := pass.TypesInfo.Types[field]
		if !ok || !typeutil.IsNamed(tv.Type, "atomic", "Pointer") {
			return true
		}
		u := get(keyOf(pass, field.X))
		u.loads = append(u.loads, call.Pos())
		return true
	})
	if len(uses) == 0 {
		return
	}

	// Second pass: Version() calls whose receiver is one of the loaded-from
	// session values (same object), i.e. a version read that re-loads the
	// pointer internally.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 0 {
			return true
		}
		fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || fun.Sel.Name != "Version" {
			return true
		}
		k := keyOf(pass, fun.X)
		if u, ok := uses[k]; ok {
			// Only count when the receiver is the session value itself, not
			// e.g. the loaded snapshot (whose key differs).
			u.versions = append(u.versions, call.Pos())
		}
		return true
	})

	for _, k := range order {
		u := uses[k]
		for _, pos := range u.loads[1:] {
			pass.Reportf(pos,
				"second cur.Load() in %s: bind the snapshot once — a reload may observe a "+
					"different snapshot across a concurrent Update (torn snapshot/version pair)",
				typeutil.FuncFor(fd))
		}
		for _, pos := range u.versions {
			pass.Reportf(pos,
				"%s mixes cur.Load() with Version() on the same session: Version() reloads the "+
					"pointer and can disagree with the bound snapshot; use the loaded snapshot's Version",
				typeutil.FuncFor(fd))
		}
	}
}
