package curload_test

import (
	"testing"

	"divtopk/tools/vet/analysis/analysistest"
	"divtopk/tools/vet/curload"
)

func Test(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), curload.Analyzer, "a")
}
