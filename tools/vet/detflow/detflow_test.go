package detflow_test

import (
	"testing"

	"divtopk/tools/vet/analysis/analysistest"
	"divtopk/tools/vet/detflow"
)

func Test(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), detflow.Analyzer, "a")
}
