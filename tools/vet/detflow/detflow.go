// Package detflow propagates determinism bottom-up over the call graph and
// flags deterministic-kernel functions that depend — directly or through
// any callee, in this package or an imported one — on a nondeterministic
// source.
//
// Invariant (PR 2/PR 3, determinism): the kernel packages
// (internal/simulation, internal/diversify, internal/core, internal/graph)
// return byte-identical results across Parallelism settings and across the
// reference/CSR kernels. detorder enforces one local shape of that
// discipline (map-range append order); detflow closes the interprocedural
// gap: a simulation function calling a graph helper that reads time.Now()
// is just as nondeterministic as one calling time.Now() itself, and only
// cross-package facts can see it.
//
// Every function with a body exports a Determinism object fact: whether it
// is deterministic, and if not, the first reason found. A function is
// nondeterministic if it
//
//   - calls a math/rand (or math/rand/v2) package-level function other than
//     the constructors — the global generator is seeded per process, while
//     rand.New(rand.NewSource(seed)) values are explicitly seeded and fine;
//   - calls anything in crypto/rand;
//   - calls time.Now, time.Since, or time.Until;
//   - builds a result slice in map iteration order without sorting it
//     (detorder.UnsortedMapAppends); or
//   - calls a function whose own Determinism fact says nondeterministic.
//
// Within the kernel scope, direct stdlib sources are reported at the call,
// and calls to nondeterministic functions are reported at the call site
// with the callee's reason chain. Outside the scope only facts are
// computed, so serving-layer code may use time.Now freely — until a kernel
// function calls it.
package detflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"divtopk/tools/vet/analysis"
	"divtopk/tools/vet/analysis/facts"
	"divtopk/tools/vet/detorder"
	"divtopk/tools/vet/internal/typeutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "detflow",
	Doc: "flag deterministic-kernel functions that reach a nondeterministic " +
		"source (global rand, wall clock, map order) through any call chain",
	Run:       run,
	FactTypes: []facts.Fact{new(Determinism)},
}

// Determinism is the object fact exported for every analyzed function.
type Determinism struct {
	// Det reports whether the function's observable results are
	// deterministic.
	Det bool `json:"det"`
	// Reason names the first nondeterminism source when Det is false
	// ("calls time.Now", "calls g.Stamp, which calls time.Now").
	Reason string `json:"reason,omitempty"`
}

// AFact marks Determinism as a serializable analyzer fact.
func (*Determinism) AFact() {}

// scope lists the packages whose outputs are pinned byte-identical; only
// they get diagnostics. Packages outside the main module (testdata) are
// always in scope.
var scope = []string{
	"internal/simulation",
	"internal/diversify",
	"internal/core",
	"internal/graph",
}

func inScope(pkgPath string) bool {
	if !strings.HasPrefix(pkgPath, "divtopk") {
		return true
	}
	for _, s := range scope {
		if strings.HasSuffix(pkgPath, s) {
			return true
		}
	}
	return false
}

// randConstructors are the math/rand functions that build explicitly
// seeded generators — calling them is deterministic; the value methods of
// the result are too.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

// nondetTimeFuncs are the wall-clock reads; the rest of package time
// (durations, formatting) is deterministic.
var nondetTimeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// source is one direct nondeterminism source in a function body.
type source struct {
	pos    token.Pos
	label  string // what to report ("time.Now")
	reason string // what to record in the fact ("calls time.Now")
	direct bool   // a stdlib source (reported here), not a callee fact
	// silent sources feed the fact but are not reported here: map-range
	// appends are already detorder's finding, and two analyzers must not
	// claim the same line.
	silent bool
}

func run(pass *analysis.Pass) (any, error) {
	c := &checker{pass: pass}
	var decls []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				decls = append(decls, fd)
			}
		}
	}
	// Bottom-up within the package: iterate so chains converge regardless
	// of declaration order (facts only flip det -> nondet, so this is a
	// monotone fixpoint).
	for round := 0; round <= len(decls); round++ {
		changed := false
		for _, fd := range decls {
			if c.exportDeterminism(fd) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	if !inScope(pass.PkgPath) {
		return nil, nil
	}
	for _, fd := range decls {
		for _, s := range c.sources(fd) {
			if s.silent {
				continue
			}
			if s.direct {
				pass.Reportf(s.pos,
					"call to %s in %s: the deterministic kernel's results are pinned "+
						"byte-identical across runs and Parallelism settings — inject the value "+
						"or use explicitly seeded state (rand.New(rand.NewSource(seed)))",
					s.label, typeutil.FuncFor(fd))
			} else {
				pass.Reportf(s.pos,
					"call to %s in %s: %s is nondeterministic (%s) and the deterministic "+
						"kernel must not depend on it — make the callee deterministic or hoist "+
						"the call out of the kernel",
					s.label, typeutil.FuncFor(fd), s.label, s.reason)
			}
		}
	}
	return nil, nil
}

type checker struct {
	pass *analysis.Pass
}

// pkgFuncCall matches call as a selector on an imported package name and
// returns the package path and function name.
func (c *checker) pkgFuncCall(call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isID := ast.Unparen(sel.X).(*ast.Ident)
	if !isID {
		return "", "", false
	}
	pn, isPkg := c.pass.TypesInfo.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// callee resolves the called function object, for fact lookup.
func (c *checker) callee(call *ast.CallExpr) (*types.Func, string) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := c.pass.TypesInfo.ObjectOf(fun).(*types.Func)
		return fn, fun.Name
	case *ast.SelectorExpr:
		fn, _ := c.pass.TypesInfo.ObjectOf(fun.Sel).(*types.Func)
		return fn, types.ExprString(fun)
	}
	return nil, ""
}

// sources collects fd's nondeterminism sources in lexical order. Func
// literals run in the enclosing function's observable behavior, so they
// are included (unlike the state-scoped analyzers, determinism is a
// whole-body property).
func (c *checker) sources(fd *ast.FuncDecl) []source {
	var out []source
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pkg, name, ok := c.pkgFuncCall(call); ok {
			label := pkg + "." + name
			switch {
			case (pkg == "math/rand" || pkg == "math/rand/v2") && !randConstructors[name]:
				out = append(out, source{pos: call.Pos(), label: label,
					reason: "calls " + label + " (process-seeded global generator)", direct: true})
				return true
			case pkg == "crypto/rand":
				out = append(out, source{pos: call.Pos(), label: label,
					reason: "calls " + label, direct: true})
				return true
			case pkg == "time" && nondetTimeFuncs[name]:
				out = append(out, source{pos: call.Pos(), label: label,
					reason: "calls " + label + " (wall clock)", direct: true})
				return true
			}
		}
		if fn, label := c.callee(call); fn != nil {
			var d Determinism
			if c.pass.ImportObjectFact(fn, &d) && !d.Det {
				out = append(out, source{pos: call.Pos(), label: label, reason: d.Reason})
			}
		}
		return true
	})
	for _, s := range detorder.UnsortedMapAppends(c.pass.TypesInfo, fd.Body) {
		out = append(out, source{pos: s.Pos, label: "map-range append",
			reason: fmt.Sprintf("appends to %q in randomized map order", s.Obj.Name()),
			direct: true, silent: true})
	}
	return out
}

// exportDeterminism computes and exports fd's Determinism fact, reporting
// whether it changed.
func (c *checker) exportDeterminism(fd *ast.FuncDecl) bool {
	obj, ok := c.pass.TypesInfo.ObjectOf(fd.Name).(*types.Func)
	if !ok {
		return false
	}
	d := Determinism{Det: true}
	if srcs := c.sources(fd); len(srcs) > 0 {
		s := srcs[0]
		reason := s.reason
		if !s.direct {
			reason = "calls " + s.label + ", which is nondeterministic (" + s.reason + ")"
		}
		d = Determinism{Det: false, Reason: reason}
	}
	var old Determinism
	if c.pass.ImportObjectFact(obj, &old) && old == d {
		return false
	}
	c.pass.ExportObjectFact(obj, &d)
	return true
}
