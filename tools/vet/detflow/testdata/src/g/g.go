// Package g stands in for internal/graph: helpers the kernel calls across a
// package boundary. detflow analyzes it first and exports Determinism facts;
// no diagnostics are expected here because the nondeterminism only matters at
// the kernel call sites.
package g

import "time"

// Stamp reads the wall clock — its Determinism fact is nondeterministic.
func Stamp() int64 { return time.Now().UnixNano() }

// Double is pure — its Determinism fact is deterministic.
func Double(x int) int { return 2 * x }

// Age chains through Stamp: nondeterminism must propagate through the
// in-package call before the fact crosses to the importing package.
func Age(since int64) int64 { return Stamp() - since }
