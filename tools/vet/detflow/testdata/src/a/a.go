// Package a stands in for a deterministic-kernel package: every
// nondeterminism source — direct, through an in-package helper, or through an
// imported package's fact — must be flagged, while seeded randomness and
// collect-then-sort stay clean.
package a

import (
	crand "crypto/rand"
	"math/rand"
	"sort"
	"time"

	"g"
)

// --- direct stdlib sources ---

func now() int64 {
	return time.Now().UnixNano() // want `call to time\.Now in now: the deterministic kernel's results are pinned byte-identical`
}

func roll() int {
	return rand.Intn(6) // want `call to math/rand\.Intn in roll`
}

func token(buf []byte) {
	crand.Read(buf) // want `call to crypto/rand\.Read in token`
}

// seeded uses an explicitly seeded generator: reproducible by construction,
// must not be flagged (the constructor allowlist).
func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}

// sampler defers the nondeterminism into a closure; the closure still runs as
// part of this function's observable behavior.
func sampler() func() int {
	return func() int { return rand.Intn(10) } // want `call to math/rand\.Intn in sampler`
}

// --- cross-package facts (the detorder-shaped gap detflow closes) ---

func useDet(x int) int { return g.Double(x) }

func useNondet() int64 {
	return g.Stamp() // want `call to g\.Stamp in useNondet: g\.Stamp is nondeterministic \(calls time\.Now \(wall clock\)\)`
}

// useChained reaches the clock two hops away: g.Age -> g.Stamp -> time.Now.
func useChained(since int64) int64 {
	return g.Age(since) // want `call to g\.Age in useChained: g\.Age is nondeterministic`
}

// --- in-package facts, declaration-order independent ---

// useCollect is declared before collect: the fact fixpoint must converge
// regardless of source order.
func useCollect(m map[int]int) []int {
	return collect(m) // want `call to collect in useCollect: collect is nondeterministic \(appends to "out" in randomized map order\)`
}

// collect builds its result in map iteration order. The append itself is
// detorder's finding, not detflow's — here it only taints the fact.
func collect(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}

// collectSorted is the collect-then-sort idiom: deterministic, and callers
// must stay clean.
func collectSorted(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func useCollectSorted(m map[int]int) []int { return collectSorted(m) }

// suppressed records a reviewed exception (e.g. jitter that never reaches a
// result): the suppression must absorb the finding.
func suppressed() int {
	//lint:allow detflow jitter feeds a backoff sleep, never a result
	return rand.Intn(3)
}
