package detorder_test

import (
	"testing"

	"divtopk/tools/vet/analysis/analysistest"
	"divtopk/tools/vet/detorder"
)

func Test(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), detorder.Analyzer, "a")
}
