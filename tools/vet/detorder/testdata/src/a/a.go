// Package a exercises the map-range-into-result-slice check.
package a

import "sort"

// bad returns keys in randomized map order: two runs (or two workers)
// produce different slices.
func bad(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `appends to "out" in map iteration order`
	}
	return out
}

// goodSorted is the collect-then-sort idiom: the order is re-established
// before the slice is observable.
func goodSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// goodSliceSorted uses sort.Slice with a comparator.
func goodSliceSorted(m map[string]int) []int {
	vals := make([]int, 0, len(m))
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// goodIndexed ranges over a deterministic slice, not the map.
func goodIndexed(m map[string]int, order []string) []int {
	out := make([]int, 0, len(order))
	for _, k := range order {
		out = append(out, m[k])
	}
	return out
}

// goodPositional writes to positions derived from the element, not from
// iteration order.
func goodPositional(m map[string]int, n int) []bool {
	out := make([]bool, n)
	for _, v := range m {
		out[v] = true
	}
	return out
}

// suppressed records a reviewed unordered accumulation (set semantics).
func suppressed(m map[string]int) []string {
	var out []string
	for k := range m {
		//lint:allow detorder consumer treats the slice as an unordered set
		out = append(out, k)
	}
	return out
}
