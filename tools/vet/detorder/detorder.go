// Package detorder flags result slices built by appending in map iteration
// order inside the deterministic kernel packages.
//
// Invariant (PR 2/PR 3, determinism): every engine in this module returns
// byte-identical results across Parallelism 1..8 and across the
// reference/CSR kernels — that discipline is what lets the tests keep the
// frozen reference kernel as an oracle and what makes result caching sound.
// Go's map iteration order is deliberately randomized, so a map-range loop
// that appends into a result slice produces a different order per run
// unless the slice is sorted afterwards. In the kernel packages
// (internal/simulation, internal/diversify, internal/core) that is a
// determinism bug by definition.
//
// Allowed shapes: ranging over a slice/array, and the collect-then-sort
// idiom — appending inside the map range is fine when the same function
// later passes the slice to a sort/slices call.
//
// The detection helpers (MapRangeAppends, SortedObjs, UnsortedMapAppends)
// are exported for the detflow analyzer, which uses map-order dependence as
// one of its nondeterminism sources when computing Determinism facts.
package detorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"divtopk/tools/vet/analysis"
	"divtopk/tools/vet/internal/typeutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "detorder",
	Doc: "flag map-range iteration feeding an ordered result slice in the " +
		"deterministic kernel packages (randomized order breaks the " +
		"Parallelism-independence guarantee)",
	Run: run,
}

// scope restricts the analyzer to the packages whose outputs are pinned
// byte-identical by the determinism tests. Packages outside the main module
// (testdata, other repos) are always analyzed.
var scope = []string{
	"internal/simulation",
	"internal/diversify",
	"internal/core",
}

func inScope(pkgPath string) bool {
	if !strings.HasPrefix(pkgPath, "divtopk") {
		return true
	}
	for _, s := range scope {
		if strings.HasSuffix(pkgPath, s) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) (any, error) {
	if !inScope(pass.PkgPath) {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			for _, s := range UnsortedMapAppends(pass.TypesInfo, fd.Body) {
				pass.Reportf(s.Pos,
					"%s appends to %q in map iteration order without sorting it afterwards: map "+
						"ranges are randomized, which breaks the byte-identical determinism the "+
						"kernel guarantees across Parallelism settings — sort the slice or iterate "+
						"a deterministic index",
					typeutil.FuncFor(fd), s.Obj.Name())
			}
		}
	}
	return nil, nil
}

// Site is one `s = append(s, ...)` occurrence inside a map-range body.
type Site struct {
	Obj types.Object
	Pos token.Pos
}

// MapRangeAppends returns every accumulate-append site inside the body of a
// range over a map in body.
func MapRangeAppends(info *types.Info, body *ast.BlockStmt) []Site {
	var sites []Site
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok || !isMap(info, rs.X) {
			return true
		}
		ast.Inspect(rs.Body, func(m ast.Node) bool {
			as, ok := m.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, rhs := range as.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					continue
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok || id.Name != "append" {
					continue
				}
				if _, ok := info.Uses[id].(*types.Builtin); !ok {
					continue
				}
				dst, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.ObjectOf(dst)
				if obj == nil {
					continue
				}
				// Only the canonical accumulate shape s = append(s, ...).
				if i < len(as.Lhs) {
					if lid, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident); !ok ||
						info.ObjectOf(lid) != obj {
						continue
					}
				}
				sites = append(sites, Site{Obj: obj, Pos: call.Pos()})
			}
			return true
		})
		return true
	})
	return sites
}

// SortedObjs returns the objects that appear in arguments of sort/slices
// package calls in body — the collect-then-sort idiom's sort half.
func SortedObjs(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	sorted := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := ast.Unparen(fun.X).(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := info.Uses[pkgID].(*types.PkgName)
		if !ok {
			return true
		}
		if p := pn.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok {
					if obj := info.ObjectOf(id); obj != nil {
						sorted[obj] = true
					}
				}
				return true
			})
		}
		return true
	})
	return sorted
}

// UnsortedMapAppends returns the map-range append sites of body whose
// destination slice is never sorted in the same body: the order-dependent
// ones.
func UnsortedMapAppends(info *types.Info, body *ast.BlockStmt) []Site {
	sites := MapRangeAppends(info, body)
	if len(sites) == 0 {
		return nil
	}
	sorted := SortedObjs(info, body)
	var out []Site
	for _, s := range sites {
		if !sorted[s.Obj] {
			out = append(out, s)
		}
	}
	return out
}

func isMap(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, ok = tv.Type.Underlying().(*types.Map)
	return ok
}
