// Package detorder flags result slices built by appending in map iteration
// order inside the deterministic kernel packages.
//
// Invariant (PR 2/PR 3, determinism): every engine in this module returns
// byte-identical results across Parallelism 1..8 and across the
// reference/CSR kernels — that discipline is what lets the tests keep the
// frozen reference kernel as an oracle and what makes result caching sound.
// Go's map iteration order is deliberately randomized, so a map-range loop
// that appends into a result slice produces a different order per run
// unless the slice is sorted afterwards. In the kernel packages
// (internal/simulation, internal/diversify, internal/core) that is a
// determinism bug by definition.
//
// Allowed shapes: ranging over a slice/array, and the collect-then-sort
// idiom — appending inside the map range is fine when the same function
// later passes the slice to a sort/slices call.
package detorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"divtopk/tools/vet/analysis"
	"divtopk/tools/vet/internal/typeutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "detorder",
	Doc: "flag map-range iteration feeding an ordered result slice in the " +
		"deterministic kernel packages (randomized order breaks the " +
		"Parallelism-independence guarantee)",
	Run: run,
}

// scope restricts the analyzer to the packages whose outputs are pinned
// byte-identical by the determinism tests. Packages outside the main module
// (testdata, other repos) are always analyzed.
var scope = []string{
	"internal/simulation",
	"internal/diversify",
	"internal/core",
}

func inScope(pkgPath string) bool {
	if !strings.HasPrefix(pkgPath, "divtopk") {
		return true
	}
	for _, s := range scope {
		if strings.HasSuffix(pkgPath, s) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) (any, error) {
	if !inScope(pass.PkgPath) {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	type appendSite struct {
		obj types.Object
		pos token.Pos
	}
	var sites []appendSite

	// Find `s = append(s, ...)` inside the body of a range over a map.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok || !isMap(pass.TypesInfo, rs.X) {
			return true
		}
		ast.Inspect(rs.Body, func(m ast.Node) bool {
			as, ok := m.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, rhs := range as.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					continue
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok || id.Name != "append" {
					continue
				}
				if _, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok {
					continue
				}
				dst, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.ObjectOf(dst)
				if obj == nil {
					continue
				}
				// Only the canonical accumulate shape s = append(s, ...).
				if i < len(as.Lhs) {
					if lid, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident); !ok ||
						pass.TypesInfo.ObjectOf(lid) != obj {
						continue
					}
				}
				sites = append(sites, appendSite{obj: obj, pos: call.Pos()})
			}
			return true
		})
		return true
	})
	if len(sites) == 0 {
		return
	}

	// A slice that is later sorted in this function is the collect-then-sort
	// idiom; anything else keeps the randomized order.
	sorted := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := ast.Unparen(fun.X).(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
		if !ok {
			return true
		}
		if p := pn.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok {
					if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
						sorted[obj] = true
					}
				}
				return true
			})
		}
		return true
	})

	for _, s := range sites {
		if sorted[s.obj] {
			continue
		}
		pass.Reportf(s.pos,
			"%s appends to %q in map iteration order without sorting it afterwards: map "+
				"ranges are randomized, which breaks the byte-identical determinism the "+
				"kernel guarantees across Parallelism settings — sort the slice or iterate "+
				"a deterministic index",
			typeutil.FuncFor(fd), s.obj.Name())
	}
}

func isMap(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, ok = tv.Type.Underlying().(*types.Map)
	return ok
}
