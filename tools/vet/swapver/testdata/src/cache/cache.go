// Package cache is the minimized warm result cache: the real
// divtopk/internal/cache.Cache reduced to its advance-installation surface.
package cache

type Cache struct{ m map[string]any }

func New() *Cache { return &Cache{m: make(map[string]any)} }

func (c *Cache) PutAdvanced(key string, v any) { c.m[key] = v }
