// Package a minimizes the versioned-swap pipeline: load the current
// snapshot, apply the delta off to the side, advance the bounds against the
// new graph, adopt them into the new snapshot, publish with one Store.
package a

import (
	"errors"
	"fmt"
	"sync/atomic"

	"cache"
)

type Delta struct{ bad bool }

type Summary struct{ N int }

type Bounds struct{ rows int }

// Advance carries the old bounds to the delta's version: a bridge call, so
// mixing the old receiver with new-version arguments here is the design,
// and its result belongs to the new version.
func (b *Bounds) Advance(g *Graph, s Summary) (*Bounds, error) {
	if g == nil {
		return nil, errors.New("nil graph")
	}
	return &Bounds{rows: b.rows + s.N}, nil
}

type Graph struct {
	version uint64
	b       *Bounds
}

func (g *Graph) Version() uint64 { return g.version }

func (g *Graph) ApplyDelta(d Delta) (*Graph, error) {
	if d.bad {
		return nil, errors.New("bad delta")
	}
	return &Graph{version: g.version + 1}, nil
}

func ApplyDeltaWithSummary(g *Graph, d Delta) (*Graph, Summary, error) {
	if d.bad {
		return nil, Summary{}, errors.New("bad delta")
	}
	return &Graph{version: g.version + 1}, Summary{N: 1}, nil
}

func (g *Graph) adoptBounds(b *Bounds) { g.b = b }

type Matcher struct {
	cur atomic.Pointer[Graph]
}

func count(g *Graph, b *Bounds) int { return b.rows + int(g.version) }

// goodUpdate is the canonical pipeline: every adopted and published piece
// originates from the delta's version (Advance's result adopts its
// arguments' delta tag).
func goodUpdate(m *Matcher, d Delta) error {
	g := m.cur.Load()
	g2, sum, err := ApplyDeltaWithSummary(g, d)
	if err != nil {
		return err
	}
	b2, err := g.b.Advance(g2, sum)
	if err != nil {
		return err
	}
	g2.adoptBounds(b2)
	m.cur.Store(g2)
	return nil
}

// goodRepublish re-stores the loaded snapshot with no delta on the path — a
// benign no-op publish.
func goodRepublish(m *Matcher) {
	g := m.cur.Load()
	m.cur.Store(g)
}

// badAdoptOld adopts the pre-delta bounds into the post-delta snapshot:
// queries on g2 would consult bounds computed against the old graph.
func badAdoptOld(m *Matcher, d Delta) error {
	g := m.cur.Load()
	g2, _, err := ApplyDeltaWithSummary(g, d)
	if err != nil {
		return err
	}
	g2.adoptBounds(g.b) // want `g2\.adoptBounds\(g\.b\) in badAdoptOld mixes state from two version sources \(lines \d+ and \d+\)`
	m.cur.Store(g2)
	return nil
}

// badStaleStore publishes the pre-delta pointer after applying the delta:
// the update is silently lost.
func badStaleStore(m *Matcher, d Delta) error {
	g := m.cur.Load()
	g2, err := g.ApplyDelta(d)
	if err != nil {
		return err
	}
	_ = g2
	m.cur.Store(g) // want `cur\.Store\(g\) in badStaleStore publishes the pre-delta snapshot`
	return nil
}

// badMixedUse feeds one operation state from both versions.
func badMixedUse(m *Matcher, d Delta) (int, error) {
	g := m.cur.Load()
	g2, err := g.ApplyDelta(d)
	if err != nil {
		return 0, err
	}
	return count(g2, g.b), nil // want `count\(g2, g\.b\) in badMixedUse mixes state from two version sources`
}

// Published pairs a snapshot with bounds; both fields must come from the
// same version.
type Published struct {
	G *Graph
	B *Bounds
}

// goodSnap publishes a version-consistent pair.
func goodSnap(m *Matcher, d Delta) (Published, error) {
	g := m.cur.Load()
	g2, sum, err := ApplyDeltaWithSummary(g, d)
	if err != nil {
		return Published{}, err
	}
	b2, err := g.b.Advance(g2, sum)
	if err != nil {
		return Published{}, err
	}
	return Published{G: g2, B: b2}, nil
}

// badMixedSnap pairs the new snapshot with the old version's bounds.
func badMixedSnap(m *Matcher, d Delta) (Published, error) {
	g := m.cur.Load()
	g2, err := g.ApplyDelta(d)
	if err != nil {
		return Published{}, err
	}
	return Published{G: g2, B: g.b}, nil // want `Published literal in badMixedSnap mixes state from two version sources`
}

// goodSessionsLoop updates each session in turn: the range variable rebinds
// every iteration, so one session's tags must not leak into the next
// iteration's checks through the back edge.
func goodSessionsLoop(ms []*Matcher, d Delta) error {
	for _, m := range ms {
		g := m.cur.Load()
		g2, err := g.ApplyDelta(d)
		if err != nil {
			return err
		}
		m.cur.Store(g2)
	}
	return nil
}

// snapshot is a load-deriving accessor: its DerivesVersion fact makes its
// call sites load-tagged.
func (m *Matcher) snapshot() *Graph { return m.cur.Load() }

// badHelperStale reaches the stale store through the accessor fact.
func badHelperStale(m *Matcher, d Delta) error {
	g := m.snapshot()
	g2, err := g.ApplyDelta(d)
	if err != nil {
		return err
	}
	_ = g2
	m.cur.Store(g) // want `cur\.Store\(g\) in badHelperStale publishes the pre-delta snapshot`
	return nil
}

// warmKey mirrors divtopk.queryKey for the advance pass: the version is an
// explicit key component.
func warmKey(ver uint64, q string) string {
	return fmt.Sprintf("v=%d|%s", ver, q)
}

// goodAdvanceInstall is the warm-cache advance pass done right: the entry's
// value was advanced to the delta's version, and its key is derived from the
// post-delta snapshot before installation.
func goodAdvanceInstall(m *Matcher, c *cache.Cache, d Delta, q string) error {
	g := m.cur.Load()
	g2, sum, err := ApplyDeltaWithSummary(g, d)
	if err != nil {
		return err
	}
	b2, err := g.b.Advance(g2, sum)
	if err != nil {
		return err
	}
	ver := g2.Version()
	c.PutAdvanced(warmKey(ver, q), b2)
	m.cur.Store(g2)
	return nil
}

// badAdvanceStaleKey installs the advanced entry under the pre-delta key:
// post-commit queries derive their key from the new version and never find
// the warm entry, while the old version's key now maps to the wrong value.
func badAdvanceStaleKey(m *Matcher, c *cache.Cache, d Delta, q string) error {
	g := m.cur.Load()
	g2, sum, err := ApplyDeltaWithSummary(g, d)
	if err != nil {
		return err
	}
	b2, err := g.b.Advance(g2, sum)
	if err != nil {
		return err
	}
	c.PutAdvanced(warmKey(g.Version(), q), b2) // want `installs the advanced entry under a pre-delta key: a delta was applied on this path \(line \d+\)`
	m.cur.Store(g2)
	return nil
}

// goodAdvancePreDelta installs under a load-derived key with no delta on the
// path — re-admitting a value for the version still being served is benign.
func goodAdvancePreDelta(m *Matcher, c *cache.Cache, q string) {
	g := m.cur.Load()
	c.PutAdvanced(warmKey(g.Version(), q), g.b)
}

// suppressed records a reviewed rollback: the delta is intentionally
// abandoned on this path.
func suppressed(m *Matcher, d Delta) error {
	g := m.cur.Load()
	g2, err := g.ApplyDelta(d)
	if err != nil {
		return err
	}
	_ = g2
	//lint:allow swapver rollback path: the delta is validated but deliberately not published
	m.cur.Store(g)
	return nil
}
