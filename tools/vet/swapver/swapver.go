// Package swapver flags code that combines or publishes state originating
// from two different snapshot versions.
//
// Invariant (PR 4/PR 5, versioned swap): an update builds the next version
// off to the side — apply the delta, advance the bound index against the new
// graph, adopt the advanced bounds into the new snapshot — and publishes
// everything with one cur.Store. Every piece of the published state must
// originate from the same version source; a new snapshot carrying the old
// version's bounds, or a Store of the pre-delta pointer after a delta was
// applied, silently de-synchronizes queries from the data they run on.
//
// The analysis runs over the cfg package's control-flow graph tagging values
// by their version source: a cur.Load() call yields a load tag, the results
// of the delta appliers (ApplyDelta, ApplyDeltaWithSummary, IncCompute)
// yield a delta tag, and tags follow assignments, composite literals, and
// call results (a call's result adopts the tag its tagged arguments agree
// on, else its receiver's). At a join, agreeing tags survive and conflicting
// tags drop to unknown — the analysis only reports what holds on the path.
//
// Three shapes are reported:
//
//   - mixing: a call (receiver + arguments) or a composite literal combines
//     values carrying two distinct tags — state from two versions flowing
//     into one operation;
//   - stale store: cur.Store of a load-tagged value on a path where a delta
//     was applied — republishing the pre-delta snapshot discards the update;
//   - stale rekey: cache.Cache.PutAdvanced with a load-tagged key on a path
//     where a delta was applied — an advanced entry holds the post-delta
//     answer, so installing it under the pre-delta key both hides the warm
//     result from post-commit queries and leaves a wrong value reachable
//     through the old version's key.
//
// The bridge calls are exempt from the mixing check: the delta appliers and
// Advance exist precisely to carry state across versions (Advance takes the
// old bounds plus the new graph and returns bounds aligned with the new
// version, so its result adopts its arguments' delta tag).
//
// Zero-parameter accessor methods whose every return carries one tag kind
// export the DerivesVersion object fact; their call sites yield that kind,
// so a helper-indirected load participates in both checks.
package swapver

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"maps"
	"sort"

	"divtopk/tools/vet/analysis"
	"divtopk/tools/vet/analysis/cfg"
	"divtopk/tools/vet/analysis/facts"
	"divtopk/tools/vet/internal/typeutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "swapver",
	Doc: "flag snapshot state mixed or published across version sources " +
		"(old-version bounds adopted into a new snapshot, pre-delta pointer " +
		"re-stored after a delta, advanced cache entry installed under a " +
		"pre-delta key)",
	Run:       run,
	FactTypes: []facts.Fact{new(DerivesVersion)},
}

// DerivesVersion is the object fact for zero-parameter accessors whose
// result always carries one version-source kind ("load" or "delta").
type DerivesVersion struct {
	Kind string `json:"kind"`
}

// AFact marks DerivesVersion as a serializable analyzer fact.
func (*DerivesVersion) AFact() {}

// deltaNames are the delta appliers: their results carry a fresh delta tag.
var deltaNames = map[string]bool{
	"ApplyDelta":            true,
	"ApplyDeltaWithSummary": true,
	"IncCompute":            true,
}

// bridgeNames are exempt from the mixing check: they intentionally combine
// the previous version's state with the next version's.
var bridgeNames = map[string]bool{
	"ApplyDelta":            true,
	"ApplyDeltaWithSummary": true,
	"IncCompute":            true,
	"Advance":               true,
}

// tag identifies a version source: the call that produced it and whether it
// was a snapshot load or a delta application.
type tag struct {
	pos  token.Pos
	kind string // "load" or "delta"
}

// vState carries the per-path tag bindings and the delta applications seen.
type vState struct {
	tags   map[types.Object]tag
	deltas map[token.Pos]bool
}

func (s vState) clone() vState {
	return vState{tags: maps.Clone(s.tags), deltas: maps.Clone(s.deltas)}
}

func joinState(a, b vState) vState {
	out := vState{tags: make(map[types.Object]tag), deltas: maps.Clone(a.deltas)}
	for k, at := range a.tags {
		if bt, ok := b.tags[k]; ok && at == bt {
			out.tags[k] = at
		}
	}
	for p := range b.deltas {
		out.deltas[p] = true
	}
	return out
}

func equalState(a, b vState) bool {
	return maps.Equal(a.tags, b.tags) && maps.Equal(a.deltas, b.deltas)
}

func run(pass *analysis.Pass) (any, error) {
	c := &checker{pass: pass}
	var decls []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				decls = append(decls, fd)
			}
		}
	}
	// Phase 1: DerivesVersion facts for zero-parameter accessors, iterated
	// so accessor chains converge regardless of declaration order.
	for round := 0; round <= len(decls); round++ {
		changed := false
		for _, fd := range decls {
			if c.exportDerives(fd) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Phase 2: check each function and each func literal over its own graph.
	for _, fd := range decls {
		c.check(fd, fd.Body)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				c.check(fd, lit.Body)
			}
			return true
		})
	}
	return nil, nil
}

type checker struct {
	pass *analysis.Pass
}

// hooks observe one replay of a block's nodes; any callback may be nil.
type hooks struct {
	// mix fires when a call or composite literal combines two tags.
	mix func(pos token.Pos, label string, a, b tag)
	// stale fires on cur.Store of a load-tagged value after a delta.
	stale func(call *ast.CallExpr, label string, deltaPos token.Pos)
	// rekey fires on cache.PutAdvanced with a load-tagged key after a delta.
	rekey func(call *ast.CallExpr, label string, deltaPos token.Pos)
	// ret observes the tag of each single-expression return, for facts.
	ret func(t tag, ok bool)
}

var errorType = types.Universe.Lookup("error").Type()

// loadCall matches call as <base>.cur.Load() on an atomic.Pointer field.
func (c *checker) loadCall(call *ast.CallExpr) bool {
	return c.curPointerCall(call, "Load") && len(call.Args) == 0
}

// storeCall matches call as <base>.cur.Store(x).
func (c *checker) storeCall(call *ast.CallExpr) (ast.Expr, bool) {
	if c.curPointerCall(call, "Store") && len(call.Args) == 1 {
		return call.Args[0], true
	}
	return nil, false
}

func (c *checker) curPointerCall(call *ast.CallExpr, method string) bool {
	fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || fun.Sel.Name != method {
		return false
	}
	field, ok := ast.Unparen(fun.X).(*ast.SelectorExpr)
	if !ok || field.Sel.Name != "cur" {
		return false
	}
	tv, ok := c.pass.TypesInfo.Types[field]
	return ok && typeutil.IsNamed(tv.Type, "atomic", "Pointer")
}

// deltaCall matches call as a delta applier.
func (c *checker) deltaCall(call *ast.CallExpr) bool {
	return deltaNames[typeutil.CalleeName(call)]
}

// advancedPut matches call as <cache.Cache>.PutAdvanced(key, val) and
// returns the key expression. PutAdvanced is the warm cache's commit-time
// installation: its value is computed against the post-delta snapshot, so
// its key must be too.
func (c *checker) advancedPut(call *ast.CallExpr) (ast.Expr, bool) {
	fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || fun.Sel.Name != "PutAdvanced" || len(call.Args) != 2 {
		return nil, false
	}
	tv, ok := c.pass.TypesInfo.Types[fun.X]
	if !ok || !typeutil.IsNamed(tv.Type, "cache", "Cache") {
		return nil, false
	}
	return call.Args[0], true
}

// accessorDerives matches call as a zero-argument call carrying the
// DerivesVersion fact.
func (c *checker) accessorDerives(call *ast.CallExpr) (string, bool) {
	if len(call.Args) != 0 {
		return "", false
	}
	var fn *types.Func
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = c.pass.TypesInfo.ObjectOf(fun).(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = c.pass.TypesInfo.ObjectOf(fun.Sel).(*types.Func)
	}
	var f DerivesVersion
	if fn != nil && c.pass.ImportObjectFact(fn, &f) {
		return f.Kind, true
	}
	return "", false
}

// exprTag resolves e's version tag on st's path, if it has one.
func (c *checker) exprTag(st vState, e ast.Expr) (tag, bool) {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	switch x := e.(type) {
	case *ast.CallExpr:
		if c.loadCall(x) {
			return tag{x.Pos(), "load"}, true
		}
		if c.deltaCall(x) {
			return tag{x.Pos(), "delta"}, true
		}
		if kind, ok := c.accessorDerives(x); ok {
			return tag{x.Pos(), kind}, true
		}
		return c.callResultTag(st, x)
	case *ast.CompositeLit:
		return c.commonTag(st, litElems(x))
	}
	if obj := typeutil.ObjOf(c.pass.TypesInfo, e); obj != nil {
		t, ok := st.tags[obj]
		return t, ok
	}
	return tag{}, false
}

// callResultTag derives a general call's result tag: the tag its tagged
// arguments agree on, else its receiver's tag.
func (c *checker) callResultTag(st vState, call *ast.CallExpr) (tag, bool) {
	if t, ok := c.commonTag(st, call.Args); ok {
		return t, ok
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return c.exprTag(st, sel.X)
	}
	return tag{}, false
}

// commonTag returns the single tag all tagged expressions in exprs share;
// ok is false when none are tagged or two disagree.
func (c *checker) commonTag(st vState, exprs []ast.Expr) (tag, bool) {
	var t tag
	found := false
	for _, e := range exprs {
		et, ok := c.exprTag(st, e)
		if !ok {
			continue
		}
		if found && et != t {
			return tag{}, false
		}
		t, found = et, true
	}
	return t, found
}

// litElems flattens a composite literal's element expressions (unwrapping
// key: value pairs).
func litElems(lit *ast.CompositeLit) []ast.Expr {
	var out []ast.Expr
	for _, e := range lit.Elts {
		if kv, ok := e.(*ast.KeyValueExpr); ok {
			e = kv.Value
		}
		out = append(out, e)
	}
	return out
}

// distinctTags finds the first pair of disagreeing tags among exprs.
func (c *checker) distinctTags(st vState, exprs []ast.Expr) (a, b tag, ok bool) {
	var t tag
	found := false
	for _, e := range exprs {
		et, eok := c.exprTag(st, e)
		if !eok {
			continue
		}
		if found && et != t {
			return t, et, true
		}
		t, found = et, true
	}
	return tag{}, tag{}, false
}

// assignTo binds t to the lhs identifier (or clears its binding when the
// right side is untagged); non-identifier destinations are left alone.
func (c *checker) assignTo(st vState, lhs ast.Expr, t tag, ok bool) {
	id, isID := ast.Unparen(lhs).(*ast.Ident)
	if !isID || id.Name == "_" {
		return
	}
	obj := c.pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return
	}
	if ok && !types.Identical(obj.Type(), errorType) {
		st.tags[obj] = t
	} else {
		delete(st.tags, obj)
	}
}

// step applies one block node to st in place, firing h's callbacks.
func (c *checker) step(n ast.Node, st vState, h hooks) {
	// A bare identifier node is a range-header binding (cfg emits Key and
	// Value as their own nodes): the variable is rebound every iteration,
	// so its tag must not survive the back edge.
	if id, ok := n.(*ast.Ident); ok {
		if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
			delete(st.tags, obj)
			return
		}
	}
	// Tag propagation through assignments and declarations.
	switch v := n.(type) {
	case *ast.AssignStmt:
		c.propagate(st, v.Lhs, v.Rhs)
	case *ast.DeclStmt:
		if gd, ok := v.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
					lhs := make([]ast.Expr, len(vs.Names))
					for i, name := range vs.Names {
						lhs[i] = name
					}
					c.propagate(st, lhs, vs.Values)
				}
			}
		}
	case *ast.ReturnStmt:
		if h.ret != nil && len(v.Results) == 1 {
			t, ok := c.exprTag(st, v.Results[0])
			h.ret(t, ok)
		}
	}
	// Checks and delta bookkeeping, over every call and literal in the node.
	ast.Inspect(n, func(x ast.Node) bool {
		switch v := x.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.CompositeLit:
			if a, b, ok := c.distinctTags(st, litElems(v)); ok && h.mix != nil {
				h.mix(v.Pos(), types.ExprString(v.Type)+" literal", a, b)
			}
		case *ast.CallExpr:
			if arg, ok := c.storeCall(v); ok {
				if t, tok := c.exprTag(st, arg); tok && t.kind == "load" && len(st.deltas) > 0 {
					if h.stale != nil {
						h.stale(v, types.ExprString(arg), minPos(st.deltas))
					}
				}
				return true
			}
			if key, ok := c.advancedPut(v); ok {
				if t, tok := c.exprTag(st, key); tok && t.kind == "load" && len(st.deltas) > 0 {
					if h.rekey != nil {
						h.rekey(v, types.ExprString(key), minPos(st.deltas))
					}
					return true
				}
				// A post-delta key falls through: the generic mixing check
				// still guards against pairing it with an old-version value.
			}
			if c.deltaCall(v) {
				st.deltas[v.Pos()] = true
			}
			if bridgeNames[typeutil.CalleeName(v)] || c.loadCall(v) {
				return true
			}
			operands := v.Args
			if sel, ok := ast.Unparen(v.Fun).(*ast.SelectorExpr); ok {
				operands = append([]ast.Expr{sel.X}, v.Args...)
			}
			if a, b, ok := c.distinctTags(st, operands); ok && h.mix != nil {
				h.mix(v.Pos(), types.ExprString(v), a, b)
			}
		}
		return true
	})
}

// propagate moves tags across one assignment.
func (c *checker) propagate(st vState, lhs, rhs []ast.Expr) {
	if len(rhs) == 1 && len(lhs) > 1 {
		// Multi-value call: every result shares the call's source.
		t, ok := c.exprTag(st, rhs[0])
		for _, l := range lhs {
			c.assignTo(st, l, t, ok)
		}
		return
	}
	for i, l := range lhs {
		if i >= len(rhs) {
			break
		}
		t, ok := c.exprTag(st, rhs[i])
		c.assignTo(st, l, t, ok)
	}
}

func minPos(set map[token.Pos]bool) token.Pos {
	first := true
	var m token.Pos
	for p := range set {
		if first || p < m {
			m, first = p, false
		}
	}
	return m
}

func (c *checker) flow() cfg.Flow {
	return cfg.Flow{
		Entry: vState{tags: map[types.Object]tag{}, deltas: map[token.Pos]bool{}},
		Transfer: func(b *cfg.Block, in cfg.State) cfg.State {
			st := in.(vState).clone()
			for _, n := range b.Nodes {
				c.step(n, st, hooks{})
			}
			return st
		},
		Join:  func(a, b cfg.State) cfg.State { return joinState(a.(vState), b.(vState)) },
		Equal: func(a, b cfg.State) bool { return equalState(a.(vState), b.(vState)) },
	}
}

// check reports version-mixing shapes in body; fd names the enclosing
// declaration.
func (c *checker) check(fd *ast.FuncDecl, body *ast.BlockStmt) {
	g := cfg.New(body)
	in := g.Fixpoint(c.flow())
	fn := typeutil.FuncFor(fd)
	type finding struct {
		pos token.Pos
		msg string
	}
	var finds []finding
	h := hooks{
		mix: func(pos token.Pos, label string, a, b tag) {
			la, lb := c.pass.Fset.Position(a.pos).Line, c.pass.Fset.Position(b.pos).Line
			finds = append(finds, finding{pos, fmt.Sprintf(
				"%s in %s mixes state from two version sources (lines %d and %d): the snapshot "+
					"and its derived state must originate from the same version — recompute the "+
					"derived side against the snapshot being used",
				label, fn, la, lb)})
		},
		stale: func(call *ast.CallExpr, label string, deltaPos token.Pos) {
			finds = append(finds, finding{call.Pos(), fmt.Sprintf(
				"cur.Store(%s) in %s publishes the pre-delta snapshot: a delta was applied on "+
					"this path (line %d) and re-storing the old pointer silently discards it — "+
					"store the post-delta snapshot",
				label, fn, c.pass.Fset.Position(deltaPos).Line)})
		},
		rekey: func(call *ast.CallExpr, label string, deltaPos token.Pos) {
			finds = append(finds, finding{call.Pos(), fmt.Sprintf(
				"PutAdvanced(%s, ...) in %s installs the advanced entry under a pre-delta key: "+
					"a delta was applied on this path (line %d) and the advanced value belongs "+
					"to the post-delta version — re-derive the key from the new snapshot's "+
					"Version() so post-commit queries find it",
				label, fn, c.pass.Fset.Position(deltaPos).Line)})
		},
	}
	for _, b := range g.Blocks {
		stIn, ok := in[b]
		if !ok {
			continue
		}
		st := stIn.(vState).clone()
		for _, n := range b.Nodes {
			c.step(n, st, h)
		}
	}
	sort.Slice(finds, func(i, j int) bool { return finds[i].pos < finds[j].pos })
	for _, f := range finds {
		c.pass.Report(analysis.Diagnostic{Pos: f.pos, Message: f.msg})
	}
}

// exportDerives exports fd's DerivesVersion fact when it is a zero-parameter
// method or function whose every single-expression return carries the same
// tag kind, reporting whether the fact changed.
func (c *checker) exportDerives(fd *ast.FuncDecl) bool {
	if fd.Type.Params != nil && fd.Type.Params.NumFields() > 0 {
		return false
	}
	obj, ok := c.pass.TypesInfo.ObjectOf(fd.Name).(*types.Func)
	if !ok {
		return false
	}
	g := cfg.New(fd.Body)
	kind := ""
	consistent := true
	h := hooks{ret: func(t tag, ok bool) {
		if !ok {
			consistent = false
			return
		}
		if kind == "" {
			kind = t.kind
		} else if kind != t.kind {
			consistent = false
		}
	}}
	in := g.Fixpoint(c.flow())
	for _, b := range g.Blocks {
		stIn, ok := in[b]
		if !ok {
			continue
		}
		st := stIn.(vState).clone()
		for _, n := range b.Nodes {
			c.step(n, st, h)
		}
	}
	if !consistent || kind == "" {
		return false
	}
	eff := DerivesVersion{Kind: kind}
	var old DerivesVersion
	if c.pass.ImportObjectFact(obj, &old) && old == eff {
		return false
	}
	c.pass.ExportObjectFact(obj, &eff)
	return true
}
