package swapver_test

import (
	"testing"

	"divtopk/tools/vet/analysis/analysistest"
	"divtopk/tools/vet/swapver"
)

func Test(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), swapver.Analyzer, "a")
}
