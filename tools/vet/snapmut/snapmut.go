// Package snapmut flags writes to graph.Graph fields or their backing
// slices outside the whitelisted construction paths.
//
// Invariant (PR 4, dynamic graphs): a Graph published through
// Matcher.cur / a Registry session is an immutable snapshot shared by every
// in-flight query; the only code allowed to write Graph state is the code
// that builds a not-yet-published graph — Builder.Build, New*, ApplyDelta*,
// io Read — plus sync.Once-guarded lazy caches (Graph.Condensation), which
// are single-assignment by construction. Any other write is a data race
// against concurrent readers and a torn snapshot for cached results.
package snapmut

import (
	"go/ast"
	"go/types"
	"regexp"

	"divtopk/tools/vet/analysis"
	"divtopk/tools/vet/internal/typeutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "snapmut",
	Doc: "flag writes to graph.Graph state outside construction paths " +
		"(published snapshots are immutable)",
	Run: run,
}

// constructionRE matches the names of functions in the graph package that
// legitimately write fields of a graph that is not yet published.
var constructionRE = regexp.MustCompile(`^(New|Build|ApplyDelta|Read)`)

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

// checkFunc walks one function, tracking whether the current node sits
// inside a func literal passed to (*sync.Once).Do — the lazy-init idiom that
// is exempt (single assignment, happens-before published reads).
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	onceLits := make(map[*ast.FuncLit]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		if _, ok := typeutil.MethodCall(pass.TypesInfo, call, "sync", "Once", "Do"); !ok {
			return true
		}
		if lit, ok := ast.Unparen(call.Args[0]).(*ast.FuncLit); ok {
			onceLits[lit] = true
		}
		return true
	})

	// exempt: whitelisted construction function in the package declaring
	// the Graph type itself. Clients can never be construction paths.
	exemptFunc := pass.Pkg.Name() == "graph" && constructionRE.MatchString(fd.Name.Name)

	var stack []ast.Node
	inOnce := func() bool {
		for _, n := range stack {
			if lit, ok := n.(*ast.FuncLit); ok && onceLits[lit] {
				return true
			}
		}
		return false
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if exemptFunc || inOnce() {
			return true
		}
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				checkWrite(pass, fd, lhs)
			}
		case *ast.IncDecStmt:
			checkWrite(pass, fd, st.X)
		case *ast.CallExpr:
			// copy(g.field, ...) writes through the backing slice.
			if id, ok := ast.Unparen(st.Fun).(*ast.Ident); ok && id.Name == "copy" && len(st.Args) == 2 {
				if _, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
					checkWrite(pass, fd, st.Args[0])
				}
			}
		}
		return true
	})
}

// checkWrite classifies one write target and reports graph-state writes.
func checkWrite(pass *analysis.Pass, fd *ast.FuncDecl, lhs ast.Expr) {
	indexed := false
	e := ast.Unparen(lhs)
peel:
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			indexed = true
			e = ast.Unparen(x.X)
		case *ast.SliceExpr:
			indexed = true
			e = ast.Unparen(x.X)
		case *ast.StarExpr:
			e = ast.Unparen(x.X)
		default:
			break peel
		}
	}
	switch base := e.(type) {
	case *ast.SelectorExpr:
		sel, ok := pass.TypesInfo.Selections[base]
		if !ok || sel.Kind() != types.FieldVal {
			return
		}
		tv, ok := pass.TypesInfo.Types[base.X]
		if !ok || !typeutil.IsNamed(tv.Type, "graph", "Graph") {
			return
		}
		// Writes inside the declaring package's construction paths were
		// already exempted; everything else is a mutation of (possibly)
		// published snapshot state.
		what := "field"
		if indexed {
			what = "backing slice of field"
		}
		pass.Reportf(lhs.Pos(),
			"write to %s graph.Graph.%s in %s: published snapshots are immutable; "+
				"mutate only inside New*/Build/ApplyDelta*/Read or a sync.Once lazy init",
			what, base.Sel.Name, typeutil.FuncFor(fd))
	case *ast.CallExpr:
		// g.Out(v)[i] = x — writing into a slice returned by a Graph
		// accessor aliases the CSR arrays of the live snapshot.
		if !indexed {
			return
		}
		fun, ok := ast.Unparen(base.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		tv, ok := pass.TypesInfo.Types[fun.X]
		if !ok || !typeutil.IsNamed(tv.Type, "graph", "Graph") {
			return
		}
		if rt, ok := pass.TypesInfo.Types[base]; !ok || !isSlice(rt.Type) {
			return
		}
		pass.Reportf(lhs.Pos(),
			"write into slice returned by (*graph.Graph).%s in %s: accessors alias the "+
				"immutable CSR/label arrays of the published snapshot — copy before modifying",
			fun.Sel.Name, typeutil.FuncFor(fd))
	}
}

func isSlice(t types.Type) bool {
	_, ok := t.Underlying().(*types.Slice)
	return ok
}
