package snapmut_test

import (
	"testing"

	"divtopk/tools/vet/analysis/analysistest"
	"divtopk/tools/vet/snapmut"
)

func Test(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), snapmut.Analyzer, "graph", "a")
}
