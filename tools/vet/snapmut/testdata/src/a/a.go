// Package a is client code over the graph package: accessors alias the
// snapshot's backing arrays, so writing through them mutates the published
// graph.
package a

import "graph"

func mutateThroughAccessor(g *graph.Graph) {
	g.Out(0)[0] = 1 // want `write into slice returned by \(\*graph\.Graph\)\.Out`
}

func okCopyFirst(g *graph.Graph) []graph.NodeID {
	out := g.Out(0)
	res := make([]graph.NodeID, len(out))
	copy(res, out)
	res[0] = 9 // fine: res is a private copy
	return res
}

// NewScratch is NOT a construction path — the whitelist applies only inside
// the package that declares Graph.
func NewScratch(g *graph.Graph) {
	g.Out(0)[0] = 2 // want `write into slice returned by`
}

func suppressedScratch(g *graph.Graph) {
	//lint:allow snapmut throwaway graph built by this helper, never published
	g.Out(0)[0] = 3
}
