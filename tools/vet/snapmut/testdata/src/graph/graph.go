// Package graph is the minimized snapshot type: the real
// divtopk/internal/graph.Graph reduced to the shapes snapmut reasons about.
package graph

import "sync"

type NodeID = int32

type Graph struct {
	n      int
	outAdj []NodeID
	labels []int32

	once sync.Once
	cond *int
}

// New is a whitelisted construction path: the graph is not yet published.
func New(n int) *Graph {
	g := &Graph{}
	g.n = n
	g.outAdj = make([]NodeID, n)
	g.labels = make([]int32, n)
	return g
}

// ApplyDelta builds the next snapshot; writes target the unpublished copy.
func ApplyDelta(g *Graph, extra NodeID) *Graph {
	g2 := New(g.n)
	g2.outAdj[0] = extra
	copy(g2.labels, g.labels)
	return g2
}

// Read parses a graph; construction path.
func Read(data []int32) *Graph {
	g := New(len(data))
	copy(g.labels, data)
	return g
}

// Condensation lazily computes derived state under sync.Once: single
// assignment with a happens-before edge to every reader — allowed.
func (g *Graph) Condensation() *int {
	g.once.Do(func() {
		v := g.n
		g.cond = &v
	})
	return g.cond
}

func (g *Graph) Out(v NodeID) []NodeID { return g.outAdj }

func (g *Graph) NumNodes() int { return g.n }

// Shrink mutates a published snapshot: every write here is a violation.
func (g *Graph) Shrink() {
	g.n = 0                     // want `write to field graph\.Graph\.n`
	g.outAdj[0] = 1             // want `write to backing slice of field graph\.Graph\.outAdj`
	g.labels = nil              // want `write to field graph\.Graph\.labels`
	copy(g.outAdj, []NodeID{1}) // want `write to field graph\.Graph\.outAdj`
}
