module divtopk

go 1.24
