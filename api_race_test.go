package divtopk

import (
	"sync"
	"testing"
)

// TestBareGraphConcurrentFirstTopK exercises the boundsCache sync.Once
// guard and the BoundsCache lazy-fill lock: two goroutines issue the first
// TopK on a bare Graph (no Matcher, cold index) at the same time. Run under
// -race this is the regression test for the unsynchronized lazy init —
// before the guard the two queries raced on g.bounds and on the per-label
// count map.
func TestBareGraphConcurrentFirstTopK(t *testing.T) {
	g := NewYouTubeLike(1_500, 12_000, 3)
	q, err := GeneratePattern(g, 4, 6, true, false, 2)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 2
	results := make([]*Result, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = TopK(g, q, 5)
		}(i)
	}
	wg.Wait()
	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
	}
	assertResultsIdentical(t, "concurrent-first", results[0], results[1])
}
