package divtopk

import (
	"io"
	"sync"

	"divtopk/internal/core"
	"divtopk/internal/diversify"
	"divtopk/internal/graph"
	"divtopk/internal/pattern"
	"divtopk/internal/simulation"
)

// Graph is an immutable directed labeled data graph with optional node
// attributes. Build one with NewGraphBuilder, parse one with ReadGraph, or
// generate one with the New*Like generators.
//
// A Graph lazily builds and caches the descendant-label bound index the
// first time TopK runs on it, so repeated queries amortize it the way the
// paper's precomputed index does. A bare Graph is safe for concurrent TopK
// calls: the index is created once and fills per label under a lock, so
// cold concurrent queries merely serialize on index construction. Wrap the
// Graph in a Matcher — which warms the whole index up front — to serve
// concurrent queries without that cold-start contention.
type Graph struct {
	g          *graph.Graph
	boundsOnce sync.Once
	bounds     *core.BoundsCache
}

// boundsCache returns the lazily created per-graph bound index, creating it
// exactly once even under concurrent first queries.
func (g *Graph) boundsCache() *core.BoundsCache {
	g.boundsOnce.Do(func() { g.bounds = core.NewBoundsCache(g.g, true) })
	return g.bounds
}

// adoptBounds installs an already-built bound index into a facade Graph
// that has never been queried — the Matcher.Update path, which advances the
// previous snapshot's index off to the side and hands the result to the new
// snapshot instead of letting it warm a cold cache from scratch. The index
// must cover g's underlying snapshot; adoption is a no-op if something
// already created the cache.
func (g *Graph) adoptBounds(bc *core.BoundsCache) {
	g.boundsOnce.Do(func() { g.bounds = bc })
}

// NumNodes returns |V|.
func (g *Graph) NumNodes() int { return g.g.NumNodes() }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return g.g.NumEdges() }

// Label returns the label of node v.
func (g *Graph) Label(v int) string { return g.g.Label(graph.NodeID(v)) }

// Successors returns the out-neighbors of v.
func (g *Graph) Successors(v int) []int {
	out := g.g.Out(graph.NodeID(v))
	res := make([]int, len(out))
	for i, w := range out {
		res[i] = int(w)
	}
	return res
}

// Stats returns a human-readable structural summary.
func (g *Graph) Stats() string { return graph.ComputeStats(g.g).String() }

// Attr returns node v's attribute under key, rendered as a string
// (integers in decimal), and whether it exists.
func (g *Graph) Attr(v int, key string) (string, bool) {
	val, ok := g.g.Attr(graph.NodeID(v), key)
	if !ok {
		return "", false
	}
	return val.String(), true
}

// Attr is a typed node attribute; construct with Int or Str.
type Attr struct {
	key string
	val graph.Value
}

// Int builds an integer attribute.
func Int(key string, v int64) Attr { return Attr{key, graph.IntValue(v)} }

// Str builds a string attribute.
func Str(key, v string) Attr { return Attr{key, graph.StrValue(v)} }

// GraphBuilder accumulates nodes and edges for a Graph.
type GraphBuilder struct {
	b *graph.Builder
}

// NewGraphBuilder returns an empty builder.
func NewGraphBuilder() *GraphBuilder { return &GraphBuilder{b: graph.NewBuilder()} }

// AddNode appends a node and returns its ID (dense, starting at 0).
func (b *GraphBuilder) AddNode(label string, attrs ...Attr) int {
	m := make(map[string]graph.Value, len(attrs))
	for _, a := range attrs {
		m[a.key] = a.val
	}
	return int(b.b.AddNode(label, m))
}

// AddEdge appends the directed edge (u, v).
func (b *GraphBuilder) AddEdge(u, v int) error {
	return b.b.AddEdge(graph.NodeID(u), graph.NodeID(v))
}

// Build finalizes the graph; the builder must not be reused.
func (b *GraphBuilder) Build() *Graph { return &Graph{g: b.b.Build()} }

// Pattern is a validated pattern graph Q = (Vp, Ep, fv, uo) with a
// designated output node.
type Pattern struct {
	p *pattern.Pattern
}

// String renders the pattern compactly.
func (p *Pattern) String() string { return p.p.String() }

// IsDAG reports whether the pattern is acyclic.
func (p *Pattern) IsDAG() bool { return p.p.IsDAG() }

// NumNodes returns |Vp|.
func (p *Pattern) NumNodes() int { return p.p.NumNodes() }

// NumEdges returns |Ep|.
func (p *Pattern) NumEdges() int { return p.p.NumEdges() }

// Pred is a search-condition predicate on a node attribute; construct with
// Eq, Ne, Lt, Le, Gt, Ge or Contains.
type Pred struct {
	pr pattern.Predicate
}

// Eq builds attr = value (value: int64, int or string).
func Eq(attr string, value any) Pred { return Pred{pattern.AttrEq(attr, value)} }

// Ne builds attr != value.
func Ne(attr string, value any) Pred { return Pred{pattern.AttrNe(attr, value)} }

// Lt builds attr < value.
func Lt(attr string, value int64) Pred { return Pred{pattern.AttrLt(attr, value)} }

// Le builds attr <= value.
func Le(attr string, value int64) Pred { return Pred{pattern.AttrLe(attr, value)} }

// Gt builds attr > value.
func Gt(attr string, value int64) Pred { return Pred{pattern.AttrGt(attr, value)} }

// Ge builds attr >= value.
func Ge(attr string, value int64) Pred { return Pred{pattern.AttrGe(attr, value)} }

// Contains builds a substring predicate on a string attribute.
func Contains(attr, sub string) Pred { return Pred{pattern.AttrContains(attr, sub)} }

// PatternBuilder accumulates query nodes and edges for a Pattern.
type PatternBuilder struct {
	p      *pattern.Pattern
	outSet bool
}

// NewPatternBuilder returns an empty builder; the first added node is the
// output node unless Output is called.
func NewPatternBuilder() *PatternBuilder { return &PatternBuilder{p: pattern.New()} }

// AddNode appends a query node with a label and optional predicates.
func (b *PatternBuilder) AddNode(label string, preds ...Pred) int {
	ps := make([]pattern.Predicate, len(preds))
	for i, pr := range preds {
		ps[i] = pr.pr
	}
	return b.p.AddNode(label, ps...)
}

// AddEdge appends the query edge (u, v).
func (b *PatternBuilder) AddEdge(u, v int) error { return b.p.AddEdge(u, v) }

// Output designates u as the output node (marked '*' in the paper).
func (b *PatternBuilder) Output(u int) error {
	b.outSet = true
	return b.p.SetOutput(u)
}

// Build validates and returns the pattern.
func (b *PatternBuilder) Build() (*Pattern, error) {
	if err := b.p.Validate(); err != nil {
		return nil, err
	}
	return &Pattern{p: b.p}, nil
}

// ReadGraph parses a graph in the text format of cmd/graphgen.
func ReadGraph(r io.Reader) (*Graph, error) {
	g, err := graph.Read(r)
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// WriteGraph serializes g in the text format.
func WriteGraph(w io.Writer, g *Graph) error { return graph.Write(w, g.g) }

// ReadPattern parses a pattern in the text format (output node marked '*').
func ReadPattern(r io.Reader) (*Pattern, error) {
	p, err := pattern.Read(r)
	if err != nil {
		return nil, err
	}
	return &Pattern{p: p}, nil
}

// WritePattern serializes p in the text format.
func WritePattern(w io.Writer, p *Pattern) error { return pattern.Write(w, p.p) }

// Match is one ranked match of the pattern's output node.
type Match struct {
	// Node is the matched data node.
	Node int
	// Label is its label.
	Label string
	// Relevance is the known lower bound on δr (exact when Exact is true).
	Relevance int
	// Upper is the upper bound on δr at termination.
	Upper int
	// Exact reports whether Relevance is exactly δr.
	Exact bool
	// RelevantSet lists the data nodes of the (possibly partial) relevant
	// set backing Relevance.
	RelevantSet []int
}

// Stats summarizes the work a query did; Examined/|Mu| is the paper's MR.
type Stats struct {
	// Candidates is the number of candidate nodes of the output node.
	Candidates int
	// Examined is the number of output matches inspected before stopping.
	Examined int
	// Batches is the number of propagation rounds.
	Batches int
	// EarlyTerminated reports whether the run stopped before exhausting the
	// candidate space.
	EarlyTerminated bool
}

// Result is a top-k answer.
type Result struct {
	// Matches holds up to k matches sorted by descending relevance.
	Matches []Match
	// All holds every match discovered before termination, sorted the same
	// way (Matches is its prefix). Under early termination this is the
	// examined subset of the candidates, not all of Mu(Q,G,uo). To keep
	// large result pools cheap, RelevantSet is expanded only for the
	// Matches prefix; entries beyond it carry bounds but no set.
	All []Match
	// GlobalMatch reports whether G matches Q at all.
	GlobalMatch bool
	// Stats summarizes the work done.
	Stats Stats
}

// DiversifiedResult is a diversified top-k answer.
type DiversifiedResult struct {
	// Matches is the selected k-set.
	Matches []Match
	// F is the diversification objective value of Matches.
	F float64
	// GlobalMatch reports whether G matches Q at all.
	GlobalMatch bool
	// Stats summarizes the work done.
	Stats Stats
}

// Matches computes Mu(Q,G,uo): all data nodes matching the output node
// under graph simulation, in ascending node order (empty when G does not
// match Q).
func (g *Graph) Matches(p *Pattern) []int {
	res := simulation.Compute(g.g, p.p)
	ms := res.MatchesOf(p.p.Output())
	out := make([]int, len(ms))
	for i, v := range ms {
		out[i] = int(v)
	}
	return out
}

// TopK returns the k most relevant matches of the output node of p in g,
// using the early-termination engine by default (see Options for the
// baseline and the nopt variants).
func TopK(g *Graph, p *Pattern, k int, opts ...Option) (*Result, error) {
	o := buildOptions(opts)
	var (
		res *core.Result
		err error
	)
	if o.baseline {
		res, err = core.MatchBaselineOpts(g.g, p.p, k, true, o.engine)
	} else {
		eng := o.engine
		if eng.Cache == nil && eng.Bounds != core.BoundTight {
			eng.Cache = g.boundsCache()
		}
		res, err = core.TopK(g.g, p.p, k, eng)
	}
	if err != nil {
		return nil, err
	}
	return convertResult(g, res), nil
}

// TopKDiversified returns a k-set of matches balancing relevance and
// diversity under the bi-criteria function F with parameter lambda ∈ [0,1]
// (0 = pure relevance, 1 = pure diversity). The default algorithm is the
// early-termination heuristic TopKDH; WithApproximation selects the
// 2-approximation TopKDiv instead.
func TopKDiversified(g *Graph, p *Pattern, k int, lambda float64, opts ...Option) (*DiversifiedResult, error) {
	o := buildOptions(opts)
	var (
		res *diversify.Result
		err error
	)
	if o.approx {
		res, err = diversify.TopKDivOpts(g.g, p.p, k, lambda, o.engine)
	} else {
		eng := o.engine
		if eng.Cache == nil && eng.Bounds != core.BoundTight {
			eng.Cache = g.boundsCache()
		}
		res, err = diversify.TopKDH(g.g, p.p, k, lambda, eng)
	}
	if err != nil {
		return nil, err
	}
	return convertDiversified(g, res), nil
}

func convertDiversified(g *Graph, res *diversify.Result) *DiversifiedResult {
	out := &DiversifiedResult{
		F:           res.F,
		GlobalMatch: res.GlobalMatch,
		Stats:       convertStats(res.Stats),
	}
	for _, m := range res.Matches {
		out.Matches = append(out.Matches, convertMatch(g, m))
	}
	return out
}

func convertResult(g *Graph, res *core.Result) *Result {
	out := &Result{GlobalMatch: res.GlobalMatch, Stats: convertStats(res.Stats)}
	top := len(res.Matches)
	for i, m := range res.All {
		if i < top {
			// Only the returned top-k expand their relevant-set bitsets to
			// node slices; doing it for the whole pool would make every
			// query pay O(|All|·|space|) for data most callers never read.
			out.All = append(out.All, convertMatchWithSpace(g, m, res.Space))
		} else {
			out.All = append(out.All, convertMatch(g, m))
		}
	}
	if top <= len(out.All) {
		out.Matches = out.All[:top]
	}
	return out
}

func convertStats(s core.Stats) Stats {
	return Stats{
		Candidates:      s.CandidatesOfOutput,
		Examined:        s.MatchesFound,
		Batches:         s.Batches,
		EarlyTerminated: s.EarlyTerminated,
	}
}

func convertMatch(g *Graph, m core.Match) Match {
	return Match{
		Node:      int(m.Node),
		Label:     g.g.Label(m.Node),
		Relevance: m.Relevance,
		Upper:     m.Upper,
		Exact:     m.Exact,
	}
}

func convertMatchWithSpace(g *Graph, m core.Match, space *simulation.RelSpace) Match {
	out := convertMatch(g, m)
	if m.R != nil && space != nil {
		for _, v := range space.NodesOf(m.R) {
			out.RelevantSet = append(out.RelevantSet, int(v))
		}
	}
	return out
}

// InducedSubgraph returns the subgraph of g induced by the given nodes,
// plus the mapping from new IDs to original ones — the "graph induced by a
// relevant set" of the paper's case study.
func (g *Graph) InducedSubgraph(nodes []int) (*Graph, []int) {
	keep := make([]graph.NodeID, len(nodes))
	for i, v := range nodes {
		keep[i] = graph.NodeID(v)
	}
	sub, orig := graph.InducedSubgraph(g.g, keep)
	back := make([]int, len(orig))
	for i, v := range orig {
		back[i] = int(v)
	}
	return &Graph{g: sub}, back
}

// Unwrap exposes the internal graph to sibling packages inside this module
// (the bench harness); external users have no use for it.
func (g *Graph) Unwrap() any { return g.g }

// UnwrapPattern exposes the internal pattern to sibling packages inside
// this module.
func (p *Pattern) UnwrapPattern() any { return p.p }
