package divtopk

import (
	"sync"
	"testing"
)

// testGraphAndPatterns builds a moderately sized cyclic graph and a handful
// of generated patterns for the concurrency tests.
func testGraphAndPatterns(t testing.TB, nPatterns int) (*Graph, []*Pattern) {
	t.Helper()
	g := NewYouTubeLike(4_000, 40_000, 1)
	var patterns []*Pattern
	for seed := int64(1); len(patterns) < nPatterns; seed++ {
		q, err := GeneratePattern(g, 4, 7, seed%2 == 0, true, seed)
		if err != nil {
			t.Fatal(err)
		}
		patterns = append(patterns, q)
	}
	return g, patterns
}

func assertResultsIdentical(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if a.GlobalMatch != b.GlobalMatch {
		t.Fatalf("%s: GlobalMatch %v vs %v", label, a.GlobalMatch, b.GlobalMatch)
	}
	if len(a.All) != len(b.All) {
		t.Fatalf("%s: |All| %d vs %d", label, len(a.All), len(b.All))
	}
	for i := range a.All {
		x, y := a.All[i], b.All[i]
		if x.Node != y.Node || x.Relevance != y.Relevance || x.Upper != y.Upper || x.Exact != y.Exact {
			t.Fatalf("%s: All[%d] differs: %+v vs %+v", label, i, x, y)
		}
	}
	if len(a.Matches) != len(b.Matches) {
		t.Fatalf("%s: |Matches| %d vs %d", label, len(a.Matches), len(b.Matches))
	}
}

// TestParallelismIdenticalResults asserts the contract of the Parallelism
// option: every worker count returns the same answer, ordering included —
// Parallelism(1) is the sequential engine, Parallelism(8) the parallel one.
func TestParallelismIdenticalResults(t *testing.T) {
	g, patterns := testGraphAndPatterns(t, 4)
	for qi, q := range patterns {
		seq, err := TopK(g, q, 10, Parallelism(1))
		if err != nil {
			t.Fatal(err)
		}
		par, err := TopK(g, q, 10, Parallelism(8))
		if err != nil {
			t.Fatal(err)
		}
		assertResultsIdentical(t, "topk", seq, par)

		seqB, err := TopK(g, q, 10, WithBaseline(), Parallelism(1))
		if err != nil {
			t.Fatal(err)
		}
		parB, err := TopK(g, q, 10, WithBaseline(), Parallelism(8))
		if err != nil {
			t.Fatal(err)
		}
		assertResultsIdentical(t, "baseline", seqB, parB)

		seqD, err := TopKDiversified(g, q, 6, 0.5, WithApproximation(), Parallelism(1))
		if err != nil {
			t.Fatal(err)
		}
		parD, err := TopKDiversified(g, q, 6, 0.5, WithApproximation(), Parallelism(8))
		if err != nil {
			t.Fatal(err)
		}
		if seqD.F != parD.F || len(seqD.Matches) != len(parD.Matches) {
			t.Fatalf("pattern %d: diversified F/|S| differ: %v/%d vs %v/%d",
				qi, seqD.F, len(seqD.Matches), parD.F, len(parD.Matches))
		}
		for i := range seqD.Matches {
			if seqD.Matches[i].Node != parD.Matches[i].Node {
				t.Fatalf("pattern %d: diversified selection differs at %d: %d vs %d",
					qi, i, seqD.Matches[i].Node, parD.Matches[i].Node)
			}
		}
	}
}

// TestMatcherBatchTopK checks BatchTopK against one-at-a-time queries:
// input order preserved, identical answers.
func TestMatcherBatchTopK(t *testing.T) {
	g, patterns := testGraphAndPatterns(t, 6)
	m := NewMatcher(g, Parallelism(4))
	batch, err := m.BatchTopK(patterns, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(patterns) {
		t.Fatalf("batch returned %d results for %d queries", len(batch), len(patterns))
	}
	for i, q := range patterns {
		want, err := TopK(g, q, 5, Parallelism(1))
		if err != nil {
			t.Fatal(err)
		}
		assertResultsIdentical(t, "batch", want, batch[i])
	}
}

// TestMatcherBatchTopKDiversified checks the diversified batch path the
// same way.
func TestMatcherBatchTopKDiversified(t *testing.T) {
	g, patterns := testGraphAndPatterns(t, 4)
	m := NewMatcher(g, Parallelism(4))
	batch, err := m.BatchTopKDiversified(patterns, 4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range patterns {
		want, err := TopKDiversified(g, q, 4, 0.5, Parallelism(1))
		if err != nil {
			t.Fatal(err)
		}
		got := batch[i]
		if want.F != got.F || len(want.Matches) != len(got.Matches) {
			t.Fatalf("query %d: F/|S| %v/%d vs %v/%d", i, want.F, len(want.Matches), got.F, len(got.Matches))
		}
		for j := range want.Matches {
			if want.Matches[j].Node != got.Matches[j].Node {
				t.Fatalf("query %d: selection differs at %d", i, j)
			}
		}
	}
}

// TestMatcherBatchError: a failing query surfaces with its position.
func TestMatcherBatchError(t *testing.T) {
	g, patterns := testGraphAndPatterns(t, 2)
	m := NewMatcher(g)
	if _, err := m.BatchTopK(patterns, 0); err == nil {
		t.Fatal("k=0 batch should fail")
	}
}

// TestMatcherConcurrentQueries hammers one warmed session from many
// goroutines; run under -race this is the data-race test for the shared
// bound index and the parallel engine sections.
func TestMatcherConcurrentQueries(t *testing.T) {
	g, patterns := testGraphAndPatterns(t, 4)
	m := NewMatcher(g)

	want := make([]*Result, len(patterns))
	for i, q := range patterns {
		res, err := m.TopK(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				q := (w + rep) % len(patterns)
				res, err := m.TopK(patterns[q], 5)
				if err != nil {
					errCh <- err
					return
				}
				if len(res.All) != len(want[q].All) {
					errCh <- errMismatch
					return
				}
				if _, err := m.TopKDiversified(patterns[q], 4, 0.5); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

var errMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "concurrent query result differs from sequential" }
