package divtopk

import (
	"sync"
	"testing"
)

// TestMatcherCacheHitsAndKeying covers the session result cache: repeats
// are hits, the key ignores Parallelism (documented to never change
// results) but distinguishes k, λ, and algorithm choice.
func TestMatcherCacheHitsAndKeying(t *testing.T) {
	g, patterns := testGraphAndPatterns(t, 2)
	m := NewMatcher(g, WithCache(64))
	q := patterns[0]

	fresh, err := m.TopK(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := m.TopK(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if cached != fresh {
		t.Fatal("repeat query did not return the cached Result")
	}
	if s := m.CacheStats(); s.Misses != 1 || s.Hits != 1 {
		t.Fatalf("stats after repeat = %+v, want 1 miss 1 hit", s)
	}

	// Parallelism is excluded from the key: different worker counts share
	// the entry (every setting returns identical results).
	if _, err := m.TopK(q, 10, Parallelism(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.TopK(q, 10, Parallelism(4)); err != nil {
		t.Fatal(err)
	}
	if s := m.CacheStats(); s.Misses != 1 {
		t.Fatalf("parallelism changed the cache key: %+v", s)
	}

	// k, λ, the algorithm family and the second pattern all get their own
	// entries.
	if _, err := m.TopK(q, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := m.TopK(q, 5, WithBaseline()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.TopKDiversified(q, 5, 0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := m.TopKDiversified(q, 5, 0.7); err != nil {
		t.Fatal(err)
	}
	if _, err := m.TopKDiversified(q, 5, 0.7, WithApproximation()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.TopK(patterns[1], 5); err != nil {
		t.Fatal(err)
	}
	if s := m.CacheStats(); s.Misses != 7 {
		t.Fatalf("misses = %d, want 7 distinct evaluations", s.Misses)
	}
}

// TestCacheKeyCrossFamilyFlags pins the key's flag scoping: each entry
// point keys only on its own algorithm flag. An irrelevant session default
// (approx for TopK, baseline for TopKDiversified) must neither collapse the
// family's engine knobs into one entry (wrong cached results) nor split
// entries that evaluate identically.
func TestCacheKeyCrossFamilyFlags(t *testing.T) {
	g, patterns := testGraphAndPatterns(t, 1)
	q := patterns[0]

	// approx is diversified-only: with it as a session default, TopK calls
	// with different engine knobs still need distinct entries...
	m := NewMatcher(g, WithCache(64), WithApproximation())
	if _, err := m.TopK(q, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := m.TopK(q, 10, WithBatches(2)); err != nil {
		t.Fatal(err)
	}
	if s := m.CacheStats(); s.Misses != 2 {
		t.Fatalf("approx default collapsed TopK knob variants: %+v", s)
	}
	// ...while the approx diversified calls ignore the knobs and share one.
	if _, err := m.TopKDiversified(q, 6, 0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := m.TopKDiversified(q, 6, 0.5, WithBatches(2)); err != nil {
		t.Fatal(err)
	}
	if s := m.CacheStats(); s.Misses != 3 {
		t.Fatalf("approx diversified variants should share one entry: %+v", s)
	}

	// baseline is top-k-only: with it as a session default, TopKDH (the
	// non-approx diversified path, which does consult the knobs) still
	// needs distinct entries per knob setting.
	m2 := NewMatcher(g, WithCache(64), WithBaseline())
	if _, err := m2.TopKDiversified(q, 6, 0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.TopKDiversified(q, 6, 0.5, WithBatches(2)); err != nil {
		t.Fatal(err)
	}
	if s := m2.CacheStats(); s.Misses != 2 {
		t.Fatalf("baseline default collapsed TopKDH knob variants: %+v", s)
	}
}

// TestMatcherCacheIdenticalToUncached asserts a cached session returns the
// same answers as an uncached one — the determinism claim behind "a cached
// result is byte-identical to a fresh evaluation".
func TestMatcherCacheIdenticalToUncached(t *testing.T) {
	g, patterns := testGraphAndPatterns(t, 3)
	plain := NewMatcher(g)
	caching := NewMatcher(g, WithCache(16))
	for _, q := range patterns {
		a, err := plain.TopK(q, 8)
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 2; round++ { // round 1 is served from cache
			b, err := caching.TopK(q, 8)
			if err != nil {
				t.Fatal(err)
			}
			assertResultsIdentical(t, "cached-vs-fresh", a, b)
		}
	}
}

// TestMatcherCacheSingleflight asserts N concurrent identical queries on a
// caching session cost exactly one engine evaluation.
func TestMatcherCacheSingleflight(t *testing.T) {
	g, patterns := testGraphAndPatterns(t, 1)
	m := NewMatcher(g, WithCache(16))
	q := patterns[0]
	const n = 16
	results := make([]*Result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := m.TopK(q, 10)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	s := m.CacheStats()
	if s.Misses != 1 {
		t.Fatalf("misses = %d, want exactly 1 evaluation for %d concurrent identical queries", s.Misses, n)
	}
	if s.Hits+s.Coalesced != n-1 {
		t.Fatalf("hits+coalesced = %d, want %d", s.Hits+s.Coalesced, n-1)
	}
	for i := 1; i < n; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different Result pointer", i)
		}
	}
}

// TestBatchTopKSharesCache asserts the batch entry points thread through
// the session cache: a batch of duplicate patterns costs one evaluation.
func TestBatchTopKSharesCache(t *testing.T) {
	g, patterns := testGraphAndPatterns(t, 1)
	m := NewMatcher(g, WithCache(16))
	batch := make([]*Pattern, 12)
	for i := range batch {
		batch[i] = patterns[0]
	}
	results, err := m.BatchTopK(batch, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s := m.CacheStats(); s.Misses != 1 {
		t.Fatalf("batch of identical queries cost %d evaluations, want 1", s.Misses)
	}
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Fatalf("batch result %d not shared", i)
		}
	}
}

// TestContainmentSeededAdmission pins the containment-aware admission path
// deterministically: after a general (label-only) pattern is cached, a
// stricter pattern whose every node condition is subsumed by it evaluates
// with candidates seeded from the donor's maintained lists — reported as
// "seeded" — and the answer is byte-identical to a cacheless session. A
// pattern over labels the donor does not carry stays a plain miss.
func TestContainmentSeededAdmission(t *testing.T) {
	b := NewGraphBuilder()
	const n = 60
	for i := 0; i < n; i++ {
		label := "person"
		if i%3 == 0 {
			label = "org"
		}
		b.AddNode(label, Int("age", int64(i%50)))
	}
	for i := 0; i < n; i++ {
		if err := b.AddEdge(i, (i*7+1)%n); err != nil {
			t.Fatal(err)
		}
		if err := b.AddEdge(i, (i*3+2)%n); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()

	buildQ := func(preds ...Pred) *Pattern {
		pb := NewPatternBuilder()
		u := pb.AddNode("person", preds...)
		v := pb.AddNode("org")
		if err := pb.AddEdge(u, v); err != nil {
			t.Fatal(err)
		}
		q, err := pb.Build()
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
	donor := buildQ()               // label-only: subsumes any person-node condition
	strict := buildQ(Gt("age", 20)) // stricter: candidates ⊆ donor's

	m := NewMatcher(g, WithCache(32))
	if _, info, err := m.TopKInfo(donor, 5); err != nil || info.Cache != "miss" {
		t.Fatalf("donor query = %+v, %v, want a miss", info, err)
	}
	res, info, err := m.TopKInfo(strict, 5)
	if err != nil {
		t.Fatal(err)
	}
	if info.Cache != "seeded" {
		t.Fatalf("strict query provenance = %q, want seeded", info.Cache)
	}
	if s := m.CacheStats(); s.Seeded != 1 {
		t.Fatalf("stats after seeded admission: %+v", s)
	}
	cold, err := NewMatcher(g).TopK(strict, 5)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, "seeded vs cold", res, cold)

	// A pattern whose labels no cached pattern carries finds no donor node
	// at all -> plain miss. (Note a partial label overlap WOULD seed: the
	// donor's org node covers org nodes of any later pattern.)
	pb := NewPatternBuilder()
	u := pb.AddNode("widget")
	v := pb.AddNode("widget")
	if err := pb.AddEdge(u, v); err != nil {
		t.Fatal(err)
	}
	unrelated, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, info, err := m.TopKInfo(unrelated, 5); err != nil || info.Cache != "miss" {
		t.Fatalf("unrelated query = %+v, %v, want a miss", info, err)
	}
}
