package divtopk

import (
	"sync"
	"testing"
)

// TestMatcherCacheHitsAndKeying covers the session result cache: repeats
// are hits, the key ignores Parallelism (documented to never change
// results) but distinguishes k, λ, and algorithm choice.
func TestMatcherCacheHitsAndKeying(t *testing.T) {
	g, patterns := testGraphAndPatterns(t, 2)
	m := NewMatcher(g, WithCache(64))
	q := patterns[0]

	fresh, err := m.TopK(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := m.TopK(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if cached != fresh {
		t.Fatal("repeat query did not return the cached Result")
	}
	if s := m.CacheStats(); s.Misses != 1 || s.Hits != 1 {
		t.Fatalf("stats after repeat = %+v, want 1 miss 1 hit", s)
	}

	// Parallelism is excluded from the key: different worker counts share
	// the entry (every setting returns identical results).
	if _, err := m.TopK(q, 10, Parallelism(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.TopK(q, 10, Parallelism(4)); err != nil {
		t.Fatal(err)
	}
	if s := m.CacheStats(); s.Misses != 1 {
		t.Fatalf("parallelism changed the cache key: %+v", s)
	}

	// k, λ, the algorithm family and the second pattern all get their own
	// entries.
	if _, err := m.TopK(q, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := m.TopK(q, 5, WithBaseline()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.TopKDiversified(q, 5, 0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := m.TopKDiversified(q, 5, 0.7); err != nil {
		t.Fatal(err)
	}
	if _, err := m.TopKDiversified(q, 5, 0.7, WithApproximation()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.TopK(patterns[1], 5); err != nil {
		t.Fatal(err)
	}
	if s := m.CacheStats(); s.Misses != 7 {
		t.Fatalf("misses = %d, want 7 distinct evaluations", s.Misses)
	}
}

// TestCacheKeyCrossFamilyFlags pins the key's flag scoping: each entry
// point keys only on its own algorithm flag. An irrelevant session default
// (approx for TopK, baseline for TopKDiversified) must neither collapse the
// family's engine knobs into one entry (wrong cached results) nor split
// entries that evaluate identically.
func TestCacheKeyCrossFamilyFlags(t *testing.T) {
	g, patterns := testGraphAndPatterns(t, 1)
	q := patterns[0]

	// approx is diversified-only: with it as a session default, TopK calls
	// with different engine knobs still need distinct entries...
	m := NewMatcher(g, WithCache(64), WithApproximation())
	if _, err := m.TopK(q, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := m.TopK(q, 10, WithBatches(2)); err != nil {
		t.Fatal(err)
	}
	if s := m.CacheStats(); s.Misses != 2 {
		t.Fatalf("approx default collapsed TopK knob variants: %+v", s)
	}
	// ...while the approx diversified calls ignore the knobs and share one.
	if _, err := m.TopKDiversified(q, 6, 0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := m.TopKDiversified(q, 6, 0.5, WithBatches(2)); err != nil {
		t.Fatal(err)
	}
	if s := m.CacheStats(); s.Misses != 3 {
		t.Fatalf("approx diversified variants should share one entry: %+v", s)
	}

	// baseline is top-k-only: with it as a session default, TopKDH (the
	// non-approx diversified path, which does consult the knobs) still
	// needs distinct entries per knob setting.
	m2 := NewMatcher(g, WithCache(64), WithBaseline())
	if _, err := m2.TopKDiversified(q, 6, 0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.TopKDiversified(q, 6, 0.5, WithBatches(2)); err != nil {
		t.Fatal(err)
	}
	if s := m2.CacheStats(); s.Misses != 2 {
		t.Fatalf("baseline default collapsed TopKDH knob variants: %+v", s)
	}
}

// TestMatcherCacheIdenticalToUncached asserts a cached session returns the
// same answers as an uncached one — the determinism claim behind "a cached
// result is byte-identical to a fresh evaluation".
func TestMatcherCacheIdenticalToUncached(t *testing.T) {
	g, patterns := testGraphAndPatterns(t, 3)
	plain := NewMatcher(g)
	caching := NewMatcher(g, WithCache(16))
	for _, q := range patterns {
		a, err := plain.TopK(q, 8)
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 2; round++ { // round 1 is served from cache
			b, err := caching.TopK(q, 8)
			if err != nil {
				t.Fatal(err)
			}
			assertResultsIdentical(t, "cached-vs-fresh", a, b)
		}
	}
}

// TestMatcherCacheSingleflight asserts N concurrent identical queries on a
// caching session cost exactly one engine evaluation.
func TestMatcherCacheSingleflight(t *testing.T) {
	g, patterns := testGraphAndPatterns(t, 1)
	m := NewMatcher(g, WithCache(16))
	q := patterns[0]
	const n = 16
	results := make([]*Result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := m.TopK(q, 10)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	s := m.CacheStats()
	if s.Misses != 1 {
		t.Fatalf("misses = %d, want exactly 1 evaluation for %d concurrent identical queries", s.Misses, n)
	}
	if s.Hits+s.Coalesced != n-1 {
		t.Fatalf("hits+coalesced = %d, want %d", s.Hits+s.Coalesced, n-1)
	}
	for i := 1; i < n; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different Result pointer", i)
		}
	}
}

// TestBatchTopKSharesCache asserts the batch entry points thread through
// the session cache: a batch of duplicate patterns costs one evaluation.
func TestBatchTopKSharesCache(t *testing.T) {
	g, patterns := testGraphAndPatterns(t, 1)
	m := NewMatcher(g, WithCache(16))
	batch := make([]*Pattern, 12)
	for i := range batch {
		batch[i] = patterns[0]
	}
	results, err := m.BatchTopK(batch, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s := m.CacheStats(); s.Misses != 1 {
		t.Fatalf("batch of identical queries cost %d evaluations, want 1", s.Misses)
	}
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Fatalf("batch result %d not shared", i)
		}
	}
}
