package divtopk

import (
	"bytes"
	"strings"
	"testing"
)

// figure1 builds the paper's Fig. 1 graph through the public API.
func figure1(t *testing.T) (*Graph, map[string]int) {
	t.Helper()
	b := NewGraphBuilder()
	names := []string{
		"PM1", "PM2", "PM3", "PM4", "DB1", "DB2", "DB3",
		"PRG1", "PRG2", "PRG3", "PRG4", "ST1", "ST2", "ST3", "ST4",
		"BA1", "UD1", "UD2",
	}
	id := map[string]int{}
	for _, n := range names {
		id[n] = b.AddNode(n[:len(n)-1])
	}
	edges := [][2]string{
		{"PM1", "DB1"}, {"PM1", "PRG1"}, {"PM1", "BA1"},
		{"PM2", "DB2"}, {"PM2", "PRG3"}, {"PM2", "PRG4"}, {"PM2", "UD1"},
		{"PM3", "DB2"}, {"PM3", "PRG3"},
		{"PM4", "DB2"}, {"PM4", "PRG2"}, {"PM4", "UD2"},
		{"DB1", "PRG1"}, {"DB1", "ST1"},
		{"PRG1", "DB1"}, {"PRG1", "ST1"}, {"PRG1", "ST2"},
		{"DB2", "PRG2"}, {"DB2", "ST3"},
		{"PRG2", "DB3"}, {"PRG2", "ST4"},
		{"DB3", "PRG3"}, {"DB3", "ST4"},
		{"PRG3", "DB2"}, {"PRG3", "ST3"},
		{"PRG4", "DB2"}, {"PRG4", "ST2"}, {"PRG4", "ST3"},
	}
	for _, e := range edges {
		if err := b.AddEdge(id[e[0]], id[e[1]]); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build(), id
}

func figure1Pattern(t *testing.T) *Pattern {
	t.Helper()
	pb := NewPatternBuilder()
	pm := pb.AddNode("PM")
	db := pb.AddNode("DB")
	prg := pb.AddNode("PRG")
	st := pb.AddNode("ST")
	for _, e := range [][2]int{{pm, db}, {pm, prg}, {db, prg}, {prg, db}, {db, st}, {prg, st}} {
		if err := pb.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := pb.Output(pm); err != nil {
		t.Fatal(err)
	}
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPublicTopK(t *testing.T) {
	g, id := figure1(t)
	p := figure1Pattern(t)
	res, err := TopK(g, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.GlobalMatch || len(res.Matches) != 2 {
		t.Fatalf("bad result: %+v", res)
	}
	if res.Matches[0].Node != id["PM2"] || res.Matches[0].Label != "PM" {
		t.Fatalf("top-1 = %+v, want PM2", res.Matches[0])
	}
	if res.Matches[0].Relevance != 8 || !res.Matches[0].Exact {
		t.Fatalf("PM2 relevance = %+v", res.Matches[0])
	}
	if len(res.Matches[0].RelevantSet) != 8 {
		t.Fatalf("relevant set size = %d", len(res.Matches[0].RelevantSet))
	}
	if res.Stats.Candidates != 4 {
		t.Fatalf("stats = %+v", res.Stats)
	}
}

func TestPublicTopKVariants(t *testing.T) {
	g, _ := figure1(t)
	p := figure1Pattern(t)
	base, err := TopK(g, p, 2, WithBaseline())
	if err != nil {
		t.Fatal(err)
	}
	if base.Stats.Examined != 4 || base.Stats.EarlyTerminated {
		t.Fatalf("baseline stats = %+v", base.Stats)
	}
	nopt, err := TopK(g, p, 2, WithRandomSelection(5), WithBatches(4), WithLooseBounds())
	if err != nil {
		t.Fatal(err)
	}
	if len(nopt.Matches) != 2 {
		t.Fatalf("nopt matches = %d", len(nopt.Matches))
	}
	// The sets agree on relevance sums (both are valid top-2).
	if base.Matches[0].Relevance+base.Matches[1].Relevance != 14 {
		t.Fatalf("baseline top-2 sum wrong: %+v", base.Matches)
	}
}

func TestPublicDiversified(t *testing.T) {
	g, _ := figure1(t)
	p := figure1Pattern(t)
	ap, err := TopKDiversified(g, p, 2, 0.5, WithApproximation())
	if err != nil {
		t.Fatal(err)
	}
	if len(ap.Matches) != 2 || ap.F < 16.0/11.0-1e-9 {
		t.Fatalf("approx: F=%v matches=%d", ap.F, len(ap.Matches))
	}
	dh, err := TopKDiversified(g, p, 2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(dh.Matches) != 2 {
		t.Fatalf("heuristic matches = %d", len(dh.Matches))
	}
}

func TestPublicMatches(t *testing.T) {
	g, id := figure1(t)
	p := figure1Pattern(t)
	ms := g.Matches(p)
	if len(ms) != 4 {
		t.Fatalf("Mu = %v", ms)
	}
	if ms[0] != id["PM1"] {
		t.Fatalf("Mu not in ascending order: %v", ms)
	}
}

func TestPublicIO(t *testing.T) {
	g, _ := figure1(t)
	p := figure1Pattern(t)
	var gb, pb bytes.Buffer
	if err := WriteGraph(&gb, g); err != nil {
		t.Fatal(err)
	}
	if err := WritePattern(&pb, p); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadGraph(&gb)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ReadPattern(&pb)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || p2.String() != p.String() {
		t.Fatal("roundtrip mismatch")
	}
	if _, err := ReadGraph(strings.NewReader("garbage\n")); err == nil {
		t.Fatal("garbage graph accepted")
	}
}

func TestPublicGenerators(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *Graph
	}{
		{"synthetic", NewSynthetic(500, 1500, 0, 1)},
		{"amazon", NewAmazonLike(500, 1500, 1)},
		{"citation", NewCitationLike(500, 1500, 1)},
		{"youtube", NewYouTubeLike(500, 1500, 1)},
	} {
		if tc.g.NumNodes() != 500 {
			t.Errorf("%s: nodes = %d", tc.name, tc.g.NumNodes())
		}
		if tc.g.Stats() == "" {
			t.Errorf("%s: empty stats", tc.name)
		}
		p, err := GeneratePattern(tc.g, 3, 3, false, false, 2)
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		res, err := TopK(tc.g, p, 5)
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if !res.GlobalMatch || len(res.Matches) == 0 {
			t.Errorf("%s: instance-guided pattern yielded no matches", tc.name)
		}
	}
}

func TestPublicCaseStudyPatterns(t *testing.T) {
	q1, q2 := CaseStudyQ1(), CaseStudyQ2()
	if q1.IsDAG() || !q2.IsDAG() {
		t.Fatal("case-study pattern shapes wrong")
	}
	// Q2's predicate chain is selective; it needs a graph of realistic size
	// (the gen tests verify the same size matches deterministically).
	g := NewYouTubeLike(20000, 70000, 4)
	r1, err := TopK(g, q1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.GlobalMatch {
		t.Fatal("Q1 should match the YouTube-like graph")
	}
	d2, err := TopKDiversified(g, q2, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !d2.GlobalMatch || len(d2.Matches) != 2 {
		t.Fatalf("Q2 diversified: %+v", d2)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g, id := figure1(t)
	p := figure1Pattern(t)
	res, err := TopK(g, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	nodes := append(res.Matches[0].RelevantSet, res.Matches[0].Node)
	sub, orig := g.InducedSubgraph(nodes)
	if sub.NumNodes() != 9 { // PM2 + its 8-node relevant set
		t.Fatalf("induced nodes = %d", sub.NumNodes())
	}
	if len(orig) != sub.NumNodes() {
		t.Fatal("orig mapping size mismatch")
	}
	_ = id
}

func TestPublicTopKMulti(t *testing.T) {
	g, id := figure1(t)
	p := figure1Pattern(t)
	res, err := TopKMulti(g, p, []int{0, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("entries = %d", len(res))
	}
	if res[0].Matches[0].Node != id["PM2"] {
		t.Fatalf("PM top = %+v", res[0].Matches[0])
	}
	if len(res[2].Matches) != 2 || res[2].Matches[0].Label != "PRG" {
		t.Fatalf("PRG result = %+v", res[2].Matches)
	}
}

func TestPublicGeneralizedRelevance(t *testing.T) {
	g, id := figure1(t)
	p := figure1Pattern(t)
	for _, name := range RelevanceFuncNames() {
		res, scores, err := TopKByRelevanceFunc(g, p, 2, name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Matches) != 2 || len(scores) != 2 {
			t.Fatalf("%s: %d matches %d scores", name, len(res.Matches), len(scores))
		}
		if scores[0] < scores[1] {
			t.Fatalf("%s: scores not descending: %v", name, scores)
		}
	}
	// Under every monotone-in-|R| function PM2 ranks first.
	res, _, err := TopKByRelevanceFunc(g, p, 1, "preference-attachment")
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches[0].Node != id["PM2"] {
		t.Fatalf("top = %+v, want PM2", res.Matches[0])
	}
	if _, _, err := TopKByRelevanceFunc(g, p, 1, "nope"); err == nil {
		t.Fatal("unknown relevance function accepted")
	}
}
